"""Numerical simulation of the closed-loop ODEs.

Two uses:

* step responses of the *linearized* system, to check the closed-form
  settling/rise/overshoot formulas of :mod:`repro.analysis.stability`;
* trajectories of the *nonlinear* model (with queue and frequency
  saturations), to check how far the linear analysis holds -- the Figure-6
  style validation that the aggregate continuous model tracks the discrete
  controller's behaviour.

A fixed-step RK4 integrator is used: the saturating right-hand sides are
cheap and non-stiff, and a fixed step keeps results deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

import numpy as np

from repro.analysis.linearize import LinearizedSystem
from repro.analysis.model import ClosedLoopModel


@dataclass(frozen=True)
class StepResponse:
    """A simulated trajectory plus measured step-response characteristics."""

    time: np.ndarray
    q: np.ndarray
    second: np.ndarray  # mu for the linear system, f for the nonlinear one
    overshoot_pct: float
    settling_time: float

    @property
    def final_value(self) -> float:
        return float(self.q[-1])


def _measure_step(time: np.ndarray, x: np.ndarray, target: float) -> Tuple[float, float]:
    """Measured percent overshoot and 2%-band settling time toward target."""
    x0 = float(x[0])
    swing = target - x0
    if abs(swing) < 1e-12:
        return 0.0, 0.0
    normalized = (x - x0) / swing
    overshoot = max(0.0, float(normalized.max()) - 1.0) * 100.0
    band = 0.02
    outside = np.abs(normalized - 1.0) > band
    if not outside.any():
        return overshoot, float(time[0])
    last_outside = int(np.nonzero(outside)[0][-1])
    if last_outside + 1 >= len(time):
        return overshoot, float(time[-1])
    return overshoot, float(time[last_outside + 1])


def simulate_linear_step(
    system: LinearizedSystem,
    q_step: float = 1.0,
    duration: float = 400.0,
    dt: float = 0.05,
) -> StepResponse:
    """Unit-step response of the linear loop x'' + K_l x' + K_m x = 0.

    The state starts displaced by ``-q_step`` from the reference (e.g. the
    load just jumped) and the response is how x returns to 0; time is in
    sampling periods.
    """
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    k_m, k_l = system.k_m, system.k_l
    steps = int(duration / dt)
    time = np.empty(steps + 1)
    q = np.empty(steps + 1)
    mu = np.empty(steps + 1)
    x, v = -q_step, 0.0
    for i in range(steps + 1):
        time[i] = i * dt
        q[i] = x
        mu[i] = v
        # RK4 on (x' = v, v' = -K_m x - K_l v)
        def deriv(xx: float, vv: float) -> Tuple[float, float]:
            return vv, -k_m * xx - k_l * vv

        k1 = deriv(x, v)
        k2 = deriv(x + 0.5 * dt * k1[0], v + 0.5 * dt * k1[1])
        k3 = deriv(x + 0.5 * dt * k2[0], v + 0.5 * dt * k2[1])
        k4 = deriv(x + dt * k3[0], v + dt * k3[1])
        x += dt / 6.0 * (k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0])
        v += dt / 6.0 * (k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1])
    overshoot, settling = _measure_step(time, q, 0.0)
    return StepResponse(
        time=time, q=q, second=mu, overshoot_pct=overshoot, settling_time=settling
    )


def simulate_nonlinear(
    model: ClosedLoopModel,
    load: Callable[[float], float],
    q0: float = 0.0,
    f0: float = 1.0,
    duration: float = 2000.0,
    dt: float = 0.1,
) -> StepResponse:
    """Trajectory of the nonlinear saturating loop under arrival rate
    ``load(t)``; time in sampling periods."""
    if duration <= 0 or dt <= 0:
        raise ValueError("duration and dt must be positive")
    steps = int(duration / dt)
    time = np.empty(steps + 1)
    q_arr = np.empty(steps + 1)
    f_arr = np.empty(steps + 1)
    q, f = q0, f0
    for i in range(steps + 1):
        t = i * dt
        time[i] = t
        q_arr[i] = q
        f_arr[i] = f

        def deriv(qq: float, ff: float, tt: float) -> Tuple[float, float]:
            ff = min(model.f_max, max(model.f_min, ff))
            return model.derivative((qq, ff), load(tt))

        k1 = deriv(q, f, t)
        k2 = deriv(q + 0.5 * dt * k1[0], f + 0.5 * dt * k1[1], t + 0.5 * dt)
        k3 = deriv(q + 0.5 * dt * k2[0], f + 0.5 * dt * k2[1], t + 0.5 * dt)
        k4 = deriv(q + dt * k3[0], f + dt * k3[1], t + dt)
        q += dt / 6.0 * (k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0])
        f += dt / 6.0 * (k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1])
        q = min(model.q_max, max(0.0, q))
        f = min(model.f_max, max(model.f_min, f))
    overshoot, settling = _measure_step(time, q_arr, float(q_arr[-1]))
    return StepResponse(
        time=time, q=q_arr, second=f_arr, overshoot_pct=overshoot, settling_time=settling
    )
