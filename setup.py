"""Setup shim.

The execution environment has no network and no ``wheel`` package, so PEP-660
editable installs (which build a wheel) fail.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup(
    # Mirrored from [project.scripts]: legacy `setup.py develop` installs do
    # not read PEP-621 script declarations on older setuptools.
    entry_points={"console_scripts": ["repro-dvfs = repro.cli:main"]},
)
