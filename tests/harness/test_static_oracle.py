"""Tests for the static-oracle baseline."""

import pytest

from repro.harness.static_oracle import (
    StaticOracleResult,
    evaluate_static,
    find_static_best,
)
from repro.harness.experiment import run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec

_WINDOW = 8_000


def _int_only_spec():
    return BenchmarkSpec(
        name="oracle-int",
        suite="spec2000int",
        phases=(
            PhaseSpec(
                name="int",
                length=_WINDOW,
                mix={K.INT_ALU: 0.7, K.LOAD: 0.15, K.BRANCH: 0.15},
            ),
        ),
    )


class TestEvaluateStatic:
    def test_pinning_changes_outcome(self):
        spec = _int_only_spec()
        full = evaluate_static(spec, {d: 1.0 for d in CONTROLLED_DOMAINS})
        fp_low = evaluate_static(
            spec,
            {DomainId.INT: 1.0, DomainId.FP: 0.25, DomainId.LS: 1.0},
        )
        # FP is unused here: pinning it low saves energy at no time cost
        assert fp_low.energy < full.energy
        assert fp_low.time_ns == pytest.approx(full.time_ns, rel=0.01)

    def test_pinning_busy_domain_slows_execution(self):
        spec = _int_only_spec()
        full = evaluate_static(spec, {d: 1.0 for d in CONTROLLED_DOMAINS})
        int_low = evaluate_static(
            spec,
            {DomainId.INT: 0.25, DomainId.FP: 1.0, DomainId.LS: 1.0},
        )
        # slowdown is bounded by how INT-throughput-limited the run is
        # (mispredict and load stalls absorb part of the frequency cut)
        assert int_low.time_ns > 1.15 * full.time_ns


class TestFindStaticBest:
    @pytest.fixture(scope="class")
    def oracle(self):
        return find_static_best(
            _int_only_spec(), candidates=(0.25, 1.0), max_instructions=_WINDOW
        )

    def test_lowers_idle_fp_domain(self, oracle):
        assert oracle.frequencies[DomainId.FP] == 0.25

    def test_result_at_least_as_good_as_corner_settings(self, oracle):
        """The unconstrained search must weakly beat the obvious corners."""
        for corner in (1.0, 0.25):
            metrics = evaluate_static(
                _int_only_spec(), {d: corner for d in CONTROLLED_DOMAINS}
            )
            assert oracle.metrics.edp <= metrics.edp + 1e-9

    def test_beats_all_fmax(self, oracle):
        full = evaluate_static(
            _int_only_spec(), {d: 1.0 for d in CONTROLLED_DOMAINS}
        )
        assert oracle.metrics.edp < full.edp

    def test_evaluation_budget_is_modest(self, oracle):
        # coordinate descent, not exhaustive: far fewer than 2^3 * passes
        assert oracle.evaluations <= 1 + 2 * 3 * 1 * 2

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            find_static_best(_int_only_spec(), candidates=())
        with pytest.raises(ValueError):
            find_static_best(_int_only_spec(), max_passes=0)


class TestPerformanceBudget:
    def test_budget_constrains_the_search(self):
        """With a tight budget the oracle may not slow the busy INT domain,
        even though doing so would improve EDP."""
        spec = _int_only_spec()
        baseline = evaluate_static(spec, {d: 1.0 for d in CONTROLLED_DOMAINS})
        constrained = find_static_best(
            spec, candidates=(0.25, 1.0), max_degradation_pct=1.0
        )
        assert constrained.frequencies[DomainId.INT] == 1.0
        assert constrained.metrics.time_ns <= baseline.time_ns * 1.015
        # the idle FP domain can still be lowered for free
        assert constrained.frequencies[DomainId.FP] == 0.25

    def test_unconstrained_saves_at_least_as_much_edp(self):
        spec = _int_only_spec()
        free = find_static_best(spec, candidates=(0.25, 1.0))
        tight = find_static_best(
            spec, candidates=(0.25, 1.0), max_degradation_pct=0.5
        )
        assert free.metrics.edp <= tight.metrics.edp + 1e-9
