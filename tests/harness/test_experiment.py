"""Tests for the experiment harness (controllers + single runs)."""

import pytest

from repro.core.controller import AdaptiveDvfsController
from repro.dvfs.attack_decay import AttackDecayController
from repro.dvfs.pid import PidController
from repro.harness.experiment import SCHEMES, build_controllers, run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig


class TestBuildControllers:
    def test_full_speed_is_empty(self):
        assert build_controllers("full-speed") == {}

    def test_adaptive_builds_one_per_domain(self):
        controllers = build_controllers("adaptive")
        assert set(controllers) == set(CONTROLLED_DOMAINS)
        for domain, ctrl in controllers.items():
            assert isinstance(ctrl, AdaptiveDvfsController)
            assert ctrl.domain is domain

    def test_adaptive_per_domain_qref(self):
        controllers = build_controllers("adaptive")
        assert controllers[DomainId.INT].config.q_ref == 6
        assert controllers[DomainId.FP].config.q_ref == 4

    def test_attack_decay_uses_domain_capacity(self):
        controllers = build_controllers("attack-decay")
        assert isinstance(controllers[DomainId.INT], AttackDecayController)
        assert controllers[DomainId.INT].config.capacity == 20
        assert controllers[DomainId.FP].config.capacity == 16

    def test_pid_interval_override(self):
        controllers = build_controllers("pid", pid_interval_ns=2500.0)
        for ctrl in controllers.values():
            assert isinstance(ctrl, PidController)
            assert ctrl.config.interval_ns == 2500.0

    def test_adaptive_overrides_forwarded(self):
        controllers = build_controllers(
            "adaptive", adaptive_overrides={"use_slope_signal": False}
        )
        for ctrl in controllers.values():
            assert not ctrl.config.use_slope_signal

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_controllers("turbo")

    def test_schemes_constant_lists_all(self):
        assert set(SCHEMES) == {
            "full-speed", "adaptive", "attack-decay", "pid", "centralized",
        }

    def test_centralized_builds_coordinated_controllers(self):
        from repro.dvfs.centralized import CoordinatedAdaptiveController

        controllers = build_controllers("centralized")
        assert set(controllers) == set(CONTROLLED_DOMAINS)
        coordinators = {
            id(ctrl.coordinator) for ctrl in controllers.values()
        }
        assert len(coordinators) == 1  # one shared coordinator
        for ctrl in controllers.values():
            assert isinstance(ctrl, CoordinatedAdaptiveController)


class TestRunExperiment:
    def test_run_by_name(self):
        result = run_experiment(
            "adpcm-encode", scheme="full-speed", max_instructions=3000
        )
        assert result.benchmark == "adpcm-encode"
        assert result.scheme == "full-speed"
        assert result.instructions > 2500

    def test_run_by_spec(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="adaptive")
        assert result.benchmark == "tiny-test"
        assert result.time_ns > 0

    def test_deterministic(self, tiny_benchmark):
        a = run_experiment(tiny_benchmark, scheme="adaptive")
        b = run_experiment(tiny_benchmark, scheme="adaptive")
        assert a.time_ns == b.time_ns
        assert a.energy.total == b.energy.total

    def test_adaptive_issues_transitions(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="adaptive")
        assert sum(result.transitions.values()) > 0

    def test_full_speed_never_transitions(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="full-speed")
        assert sum(result.transitions.values()) == 0
