"""Tests for the experiment harness (controllers + single runs)."""

import pytest

from repro.core.controller import AdaptiveDvfsController
from repro.dvfs.attack_decay import AttackDecayController
from repro.dvfs.pid import PidController
from repro.harness.experiment import SCHEMES, build_controllers, run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig


class TestBuildControllers:
    def test_full_speed_is_empty(self):
        assert build_controllers("full-speed") == {}

    def test_adaptive_builds_one_per_domain(self):
        controllers = build_controllers("adaptive")
        assert set(controllers) == set(CONTROLLED_DOMAINS)
        for domain, ctrl in controllers.items():
            assert isinstance(ctrl, AdaptiveDvfsController)
            assert ctrl.domain is domain

    def test_adaptive_per_domain_qref(self):
        controllers = build_controllers("adaptive")
        assert controllers[DomainId.INT].config.q_ref == 6
        assert controllers[DomainId.FP].config.q_ref == 4

    def test_attack_decay_uses_domain_capacity(self):
        controllers = build_controllers("attack-decay")
        assert isinstance(controllers[DomainId.INT], AttackDecayController)
        assert controllers[DomainId.INT].config.capacity == 20
        assert controllers[DomainId.FP].config.capacity == 16

    def test_pid_interval_override(self):
        controllers = build_controllers("pid", pid_interval_ns=2500.0)
        for ctrl in controllers.values():
            assert isinstance(ctrl, PidController)
            assert ctrl.config.interval_ns == 2500.0

    def test_adaptive_overrides_forwarded(self):
        controllers = build_controllers(
            "adaptive", adaptive_overrides={"use_slope_signal": False}
        )
        for ctrl in controllers.values():
            assert not ctrl.config.use_slope_signal

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown scheme"):
            build_controllers("turbo")

    def test_schemes_constant_lists_all(self):
        assert set(SCHEMES) == {
            "full-speed", "adaptive", "attack-decay", "pid", "centralized",
        }

    def test_centralized_builds_coordinated_controllers(self):
        from repro.dvfs.centralized import CoordinatedAdaptiveController

        controllers = build_controllers("centralized")
        assert set(controllers) == set(CONTROLLED_DOMAINS)
        coordinators = {
            id(ctrl.coordinator) for ctrl in controllers.values()
        }
        assert len(coordinators) == 1  # one shared coordinator
        for ctrl in controllers.values():
            assert isinstance(ctrl, CoordinatedAdaptiveController)


class TestRunExperiment:
    def test_run_by_name(self):
        result = run_experiment(
            "adpcm-encode", scheme="full-speed", max_instructions=3000
        )
        assert result.benchmark == "adpcm-encode"
        assert result.scheme == "full-speed"
        assert result.instructions > 2500

    def test_run_by_spec(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="adaptive")
        assert result.benchmark == "tiny-test"
        assert result.time_ns > 0

    def test_deterministic(self, tiny_benchmark):
        a = run_experiment(tiny_benchmark, scheme="adaptive")
        b = run_experiment(tiny_benchmark, scheme="adaptive")
        assert a.time_ns == b.time_ns
        assert a.energy.total == b.energy.total

    def test_adaptive_issues_transitions(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="adaptive")
        assert sum(result.transitions.values()) > 0

    def test_full_speed_never_transitions(self, tiny_benchmark):
        result = run_experiment(tiny_benchmark, scheme="full-speed")
        assert sum(result.transitions.values()) == 0


class TestSeedForwarding:
    """Regression: an explicit seed must reach *both* the trace generator
    and the processor's jitter RNG (it used to stop at the generator)."""

    def test_seed_override_reaches_processor(self, monkeypatch):
        import repro.harness.experiment as experiment_module

        captured = {}
        real_create = experiment_module.create_processor

        def spy_create(*args, **kwargs):
            captured.update(kwargs)
            return real_create(*args, **kwargs)

        monkeypatch.setattr(experiment_module, "create_processor", spy_create)
        run_experiment("adpcm-encode", max_instructions=1500, seed=777)
        assert captured["seed"] == 777

    def test_default_seed_still_comes_from_spec(self, monkeypatch):
        import repro.harness.experiment as experiment_module

        from repro.workloads.suite import get_benchmark

        captured = {}
        real_create = experiment_module.create_processor

        def spy_create(*args, **kwargs):
            captured.update(kwargs)
            return real_create(*args, **kwargs)

        monkeypatch.setattr(experiment_module, "create_processor", spy_create)
        run_experiment("adpcm-encode", max_instructions=1500)
        assert captured["seed"] == get_benchmark("adpcm-encode").seed

    def test_same_seed_reproduces_different_seed_diverges(self, tiny_benchmark):
        a = run_experiment(tiny_benchmark, scheme="adaptive", seed=11)
        b = run_experiment(tiny_benchmark, scheme="adaptive", seed=11)
        c = run_experiment(tiny_benchmark, scheme="adaptive", seed=12)
        assert a.time_ns == b.time_ns
        assert a.energy.total == b.energy.total
        assert (a.time_ns, a.energy.total) != (c.time_ns, c.energy.total)


class TestRunExperimentBatch:
    def test_serial_batch_matches_single_runs(self, tiny_benchmark):
        from repro.engine.jobs import SweepJob
        from repro.harness.experiment import run_experiment_batch

        jobs = [
            SweepJob.make(tiny_benchmark, scheme=scheme)
            for scheme in ("full-speed", "adaptive")
        ]
        batched = run_experiment_batch(jobs)
        singles = [
            run_experiment(tiny_benchmark, scheme=s, record_history=False)
            for s in ("full-speed", "adaptive")
        ]
        for got, want in zip(batched, singles):
            assert got.scheme == want.scheme
            assert got.time_ns == want.time_ns
            assert got.energy.total == want.energy.total

    def test_rejects_non_engine(self, tiny_benchmark):
        from repro.harness.experiment import run_experiment_batch

        with pytest.raises(TypeError, match="SweepEngine"):
            run_experiment_batch([], engine=object())
