"""Tests for terminal visualization."""

import pytest

from repro import viz
from repro.harness.experiment import run_experiment
from repro.mcd.domains import DomainId


class TestLinePlot:
    def test_renders_extremes_as_labels(self):
        text = viz.line_plot([0, 1, 2, 3], [1.0, 3.0, 2.0, 1.5])
        assert "3.00" in text
        assert "1.00" in text

    def test_width_and_height_respected(self):
        text = viz.line_plot(list(range(100)), [float(i % 7) for i in range(100)],
                             width=40, height=8)
        lines = text.splitlines()
        assert len(lines) == 8 + 1  # grid + axis
        assert all(len(line) <= 10 + 40 for line in lines)

    def test_flat_series_does_not_crash(self):
        text = viz.line_plot([0, 1, 2], [5.0, 5.0, 5.0])
        assert "*" in text

    def test_x_label(self):
        text = viz.line_plot([0, 10], [1.0, 2.0], x_label="instructions")
        assert "instructions" in text

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            viz.line_plot([0, 1], [1.0])

    def test_rejects_tiny_plot(self):
        with pytest.raises(ValueError):
            viz.line_plot([0, 1], [1.0, 2.0], width=2)


class TestSparkline:
    def test_levels(self):
        spark = viz.sparkline([0.0, 1.0])
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_resampling(self):
        spark = viz.sparkline(list(range(100)), width=10)
        assert len(spark) == 10

    def test_flat(self):
        assert len(viz.sparkline([2.0, 2.0, 2.0])) == 3

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            viz.sparkline([])


class TestBarChart:
    def test_bars_scale_with_values(self):
        text = viz.bar_chart(["a", "b"], [10.0, 5.0], width=20)
        a_line, b_line = text.splitlines()
        assert a_line.count("#") == 2 * b_line.count("#")

    def test_negative_values_use_dashes(self):
        text = viz.bar_chart(["up", "down"], [5.0, -5.0])
        lines = text.splitlines()
        assert "#" in lines[0]
        assert "-" in lines[1].split("|")[1]

    def test_title(self):
        text = viz.bar_chart(["x"], [1.0], title="Energy savings")
        assert text.splitlines()[0] == "Energy savings"

    def test_rejects_mismatch(self):
        with pytest.raises(ValueError):
            viz.bar_chart(["a"], [1.0, 2.0])


class TestResultTraces:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(
            "adpcm-encode", scheme="adaptive", max_instructions=10_000,
            history_stride=8,
        )

    def test_frequency_trace(self, result):
        text = viz.frequency_trace(result, DomainId.FP)
        assert "adpcm-encode" in text
        assert "fp frequency" in text

    def test_occupancy_trace(self, result):
        text = viz.occupancy_trace(result, DomainId.INT)
        assert "queue occupancy" in text

    def test_requires_history(self):
        result = run_experiment(
            "adpcm-encode", scheme="full-speed", max_instructions=3000,
            record_history=False,
        )
        with pytest.raises(ValueError, match="history"):
            viz.frequency_trace(result, DomainId.FP)
