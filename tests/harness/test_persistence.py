"""Tests for result persistence."""

import json

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.persistence import (
    FORMAT_VERSION,
    domain_value,
    load_results,
    result_to_dict,
    save_results,
)
from repro.mcd.domains import DomainId


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        "adpcm-encode", scheme="adaptive", max_instructions=5000,
        history_stride=8,
    )


class TestSerialization:
    def test_roundtrip_core_fields(self, result, tmp_path):
        path = str(tmp_path / "results.json")
        save_results(path, [result])
        loaded = load_results(path)
        assert len(loaded) == 1
        data = loaded[0]
        assert data["benchmark"] == "adpcm-encode"
        assert data["scheme"] == "adaptive"
        assert data["time_ns"] == pytest.approx(result.time_ns)
        assert data["energy"]["total"] == pytest.approx(result.energy.total)
        assert domain_value(data, "transitions", DomainId.FP) == (
            result.transitions[DomainId.FP]
        )

    def test_history_excluded_by_default(self, result):
        assert "history" not in result_to_dict(result)

    def test_history_included_on_request(self, result, tmp_path):
        path = str(tmp_path / "with_history.json")
        save_results(path, [result], include_history=True)
        data = load_results(path)[0]
        history = data["history"]
        assert len(history["time_ns"]) == len(result.history.time_ns)
        assert history["frequency_ghz"]["fp"] == result.history.frequency_ghz[DomainId.FP]

    def test_file_is_valid_json(self, result, tmp_path):
        path = tmp_path / "plain.json"
        save_results(str(path), [result])
        payload = json.loads(path.read_text())
        assert payload["version"] == FORMAT_VERSION

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "results": []}))
        with pytest.raises(ValueError, match="version"):
            load_results(str(path))

    def test_multiple_results(self, result, tmp_path):
        path = str(tmp_path / "multi.json")
        save_results(path, [result, result])
        assert len(load_results(path)) == 2
