"""Tests for result persistence."""

import json
import os

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.persistence import (
    FORMAT_VERSION,
    domain_value,
    load_result_objects,
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)
from repro.mcd.domains import DomainId


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        "adpcm-encode", scheme="adaptive", max_instructions=5000,
        history_stride=8,
    )


class TestSerialization:
    def test_roundtrip_core_fields(self, result, tmp_path):
        path = str(tmp_path / "results.json")
        save_results(path, [result])
        loaded = load_results(path)
        assert len(loaded) == 1
        data = loaded[0]
        assert data["benchmark"] == "adpcm-encode"
        assert data["scheme"] == "adaptive"
        assert data["time_ns"] == pytest.approx(result.time_ns)
        assert data["energy"]["total"] == pytest.approx(result.energy.total)
        assert domain_value(data, "transitions", DomainId.FP) == (
            result.transitions[DomainId.FP]
        )

    def test_history_excluded_by_default(self, result):
        assert "history" not in result_to_dict(result)

    def test_history_included_on_request(self, result, tmp_path):
        path = str(tmp_path / "with_history.json")
        save_results(path, [result], include_history=True)
        data = load_results(path)[0]
        history = data["history"]
        assert len(history["time_ns"]) == len(result.history.time_ns)
        assert history["frequency_ghz"]["fp"] == result.history.frequency_ghz[DomainId.FP]

    def test_file_is_valid_json(self, result, tmp_path):
        path = tmp_path / "plain.json"
        save_results(str(path), [result])
        payload = json.loads(path.read_text())
        assert payload["version"] == FORMAT_VERSION

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 999, "results": []}))
        with pytest.raises(ValueError, match="version"):
            load_results(str(path))

    def test_multiple_results(self, result, tmp_path):
        path = str(tmp_path / "multi.json")
        save_results(path, [result, result])
        assert len(load_results(path)) == 2


def _assert_results_equal(loaded, result, with_history):
    assert loaded.benchmark == result.benchmark
    assert loaded.scheme == result.scheme
    assert loaded.time_ns == pytest.approx(result.time_ns)
    assert loaded.instructions == result.instructions
    assert loaded.energy.total == pytest.approx(result.energy.total)
    assert loaded.energy.chip_total == pytest.approx(result.energy.chip_total)
    assert loaded.energy.by_domain == pytest.approx(result.energy.by_domain)
    assert loaded.transitions == result.transitions
    assert loaded.mean_frequency_ghz == pytest.approx(result.mean_frequency_ghz)
    assert loaded.issued_by_domain == result.issued_by_domain
    assert loaded.branch_mispredict_rate == pytest.approx(
        result.branch_mispredict_rate
    )
    assert loaded.sync_deferral_rate == pytest.approx(result.sync_deferral_rate)
    if with_history:
        assert loaded.history.time_ns == result.history.time_ns
        assert loaded.history.retired == result.history.retired
        assert loaded.history.occupancy == result.history.occupancy
        assert loaded.history.frequency_ghz == result.history.frequency_ghz
        assert loaded.history.issued == result.history.issued
    else:
        assert loaded.history.time_ns == []


class TestObjectRoundTrip:
    """save_results -> load_result_objects is lossless."""

    @pytest.mark.parametrize("with_history", [False, True])
    def test_roundtrip_unchanged(self, result, tmp_path, with_history):
        path = str(tmp_path / "roundtrip.json")
        save_results(path, [result], include_history=with_history)
        (loaded,) = load_result_objects(path)
        _assert_results_equal(loaded, result, with_history)
        # metrics derived from the reconstruction agree too
        assert loaded.metrics.energy == pytest.approx(result.metrics.energy)
        assert loaded.ipns == pytest.approx(result.ipns)

    def test_result_from_dict_inverts_result_to_dict(self, result):
        loaded = result_from_dict(result_to_dict(result, include_history=True))
        _assert_results_equal(loaded, result, with_history=True)

    def test_wrong_format_version_raises(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(
            json.dumps({"version": FORMAT_VERSION + 1, "results": []})
        )
        with pytest.raises(ValueError, match="version"):
            load_result_objects(str(path))


class TestGzipAndAtomicity:
    def test_gz_path_roundtrips(self, result, tmp_path):
        path = str(tmp_path / "results.json.gz")
        save_results(path, [result], include_history=True)
        # really compressed: gzip magic bytes on disk
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        (loaded,) = load_result_objects(path)
        _assert_results_equal(loaded, result, with_history=True)

    def test_gzip_output_is_deterministic(self, result, tmp_path):
        a, b = str(tmp_path / "a.json.gz"), str(tmp_path / "b.json.gz")
        save_results(a, [result])
        save_results(b, [result])
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_failed_write_preserves_existing_file(
        self, result, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "precious.json")
        save_results(path, [result])
        before = open(path).read()

        def exploding_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk on fire"):
            save_results(path, [result, result])
        assert open(path).read() == before
        # the aborted temp file was cleaned up
        assert sorted(p.name for p in tmp_path.iterdir()) == ["precious.json"]

    def test_save_creates_missing_directories(self, result, tmp_path):
        path = str(tmp_path / "deep" / "nested" / "results.json")
        save_results(path, [result])
        assert load_results(path)
