"""Tests for scheme comparison and aggregation."""

import pytest

from repro.harness.comparison import aggregate, compare_schemes, sweep


@pytest.fixture(scope="module")
def comparison(request):
    from repro.workloads.phases import BenchmarkSpec, PhaseSpec
    from repro.workloads.instructions import InstructionKind as K

    spec = BenchmarkSpec(
        name="cmp-test",
        suite="mediabench",
        phases=(
            PhaseSpec(
                name="int",
                length=8000,
                mix={K.INT_ALU: 0.6, K.LOAD: 0.2, K.STORE: 0.05, K.BRANCH: 0.15},
            ),
        ),
    )
    return compare_schemes(spec, schemes=("adaptive", "pid"))


class TestCompareSchemes:
    def test_contains_requested_schemes(self, comparison):
        assert [s.scheme for s in comparison.schemes] == ["adaptive", "pid"]

    def test_result_for_lookup(self, comparison):
        assert comparison.result_for("pid").scheme == "pid"
        with pytest.raises(KeyError):
            comparison.result_for("turbo")

    def test_baseline_metrics_sane(self, comparison):
        assert comparison.baseline.time_ns > 0
        assert comparison.baseline.energy > 0

    def test_relative_metrics_consistent(self, comparison):
        for s in comparison.schemes:
            expected_sav = 100 * (comparison.baseline.energy - s.metrics.energy) / comparison.baseline.energy
            assert s.energy_savings_pct == pytest.approx(expected_sav)
            expected_deg = 100 * (s.metrics.time_ns - comparison.baseline.time_ns) / comparison.baseline.time_ns
            assert s.perf_degradation_pct == pytest.approx(expected_deg)

    def test_adaptive_saves_energy_on_int_workload(self, comparison):
        """FP domain idle throughout: DVFS must save energy."""
        adaptive = comparison.result_for("adaptive")
        assert adaptive.energy_savings_pct > 0.0

    def test_perf_degradation_bounded(self, comparison):
        adaptive = comparison.result_for("adaptive")
        assert adaptive.perf_degradation_pct < 25.0


class TestAggregate:
    def test_aggregate_means(self, comparison):
        agg = aggregate([comparison, comparison], "adaptive")
        single = comparison.result_for("adaptive")
        assert agg["energy_savings_pct"] == pytest.approx(single.energy_savings_pct)
        assert agg["perf_degradation_pct"] == pytest.approx(single.perf_degradation_pct)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([], "adaptive")


class TestSweep:
    def test_sweep_runs_multiple_benchmarks(self):
        from repro.harness.comparison import sweep
        from repro.workloads.instructions import InstructionKind as K
        from repro.workloads.phases import BenchmarkSpec, PhaseSpec

        specs = [
            BenchmarkSpec(
                name=f"sweep-{i}",
                suite="mediabench",
                phases=(
                    PhaseSpec(
                        name="p",
                        length=2500,
                        mix={K.INT_ALU: 0.6, K.LOAD: 0.25, K.BRANCH: 0.15},
                    ),
                ),
            )
            for i in range(2)
        ]
        comparisons = sweep(specs, schemes=("adaptive",))
        assert [c.benchmark for c in comparisons] == ["sweep-0", "sweep-1"]
        for comp in comparisons:
            assert comp.result_for("adaptive").metrics.time_ns > 0
