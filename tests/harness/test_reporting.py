"""Tests for table/CSV rendering."""

import pytest

from repro.harness.reporting import csv_string, format_table, write_csv


class TestFormatTable:
    def test_aligned_columns(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1], ["b", 123.456]],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "alpha" in lines[2]
        assert "123.46" in lines[3]

    def test_title_with_rule(self):
        text = format_table(["a"], [[1]], title="Table 9")
        lines = text.splitlines()
        assert lines[0] == "Table 9"
        assert lines[1] == "=" * len("Table 9")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159]])
        assert "3.14" in text and "3.14159" not in text


class TestCsv:
    def test_csv_string(self):
        text = csv_string(["a", "b"], [[1, 2], [3, 4]])
        assert text.splitlines() == ["a,b", "1,2", "3,4"]

    def test_write_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(str(path), ["x", "y"], [[1, 2.5]])
        assert path.read_text().splitlines() == ["x,y", "1,2.5"]
