"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.scheme == "adaptive"
        assert args.instructions == 60_000

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_compare_rejects_full_speed(self):
        """full-speed is the implicit baseline, not a comparable scheme."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "gzip", "--schemes", "full-speed"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "epic-decode" in out
        assert "fast" in out and "steady" in out

    def test_run(self, capsys):
        assert main(["run", "adpcm-encode", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "instructions retired" in out
        assert "mean f (fp )" in out or "mean f (fp" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "adpcm-encode", "--schemes", "adaptive",
             "--instructions", "3000"]
        ) == 0
        out = capsys.readouterr().out
        assert "energy savings" in out

    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "STABLE" in out
        assert "xi=" in out

    def test_analyze_custom_delays(self, capsys):
        assert main(["analyze", "--t-m0", "16", "--t-l0", "8"]) == 0
        assert "STABLE" in capsys.readouterr().out
