"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "gzip"])
        assert args.scheme == "adaptive"
        assert args.instructions == 60_000

    def test_run_rejects_unknown_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "doom"])

    def test_compare_rejects_full_speed(self):
        """full-speed is the implicit baseline, not a comparable scheme."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "gzip", "--schemes", "full-speed"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "epic-decode" in out
        assert "fast" in out and "steady" in out

    def test_run(self, capsys):
        assert main(["run", "adpcm-encode", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "instructions retired" in out
        assert "mean f (fp )" in out or "mean f (fp" in out

    def test_compare(self, capsys):
        assert main(
            ["compare", "adpcm-encode", "--schemes", "adaptive",
             "--instructions", "3000"]
        ) == 0
        out = capsys.readouterr().out
        assert "energy savings" in out

    def test_analyze(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "STABLE" in out
        assert "xi=" in out

    def test_analyze_custom_delays(self, capsys):
        assert main(["analyze", "--t-m0", "16", "--t-l0", "8"]) == 0
        assert "STABLE" in capsys.readouterr().out


class TestJsonAndSeedOptions:
    def test_run_json(self, capsys):
        import json

        assert main(
            ["run", "adpcm-encode", "--instructions", "2000", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["benchmark"] == "adpcm-encode"
        assert data["scheme"] == "adaptive"
        assert data["time_ns"] > 0
        assert set(data["energy"]["by_domain"]) >= {"int", "fp", "ls"}

    def test_run_seed_is_reproducible(self, capsys):
        import json

        argv = ["run", "adpcm-encode", "--instructions", "2000",
                "--seed", "42", "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_compare_json(self, capsys):
        import json

        assert main(
            ["compare", "adpcm-encode", "--schemes", "adaptive",
             "--instructions", "2000", "--seed", "7", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["benchmark"] == "adpcm-encode"
        (scheme,) = payload[0]["schemes"]
        assert scheme["scheme"] == "adaptive"
        assert "energy_savings_pct" in scheme


class TestSweepCommand:
    def test_sweep_end_to_end_with_cache_and_events(self, capsys, tmp_path):
        import json

        cache_dir = str(tmp_path / "cache")
        events = str(tmp_path / "events.jsonl")
        argv = [
            "sweep", "adpcm-encode", "gzip",
            "--schemes", "adaptive", "pid",
            "--instructions", "2000", "--jobs", "2",
            "--cache-dir", cache_dir, "--events", events,
            "--no-progress", "--json",
        ]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        # 2 benchmarks x (baseline + 2 schemes) = 6 jobs, all simulated
        assert first["telemetry"]["jobs_run"] == 6
        assert first["telemetry"]["cache_hits"] == 0
        assert first["telemetry"]["failures"] == 0
        assert {b["benchmark"] for b in first["benchmarks"]} == {
            "adpcm-encode", "gzip",
        }
        assert set(first["aggregate"]) == {"adaptive", "pid"}

        # second invocation: every job served from the cache
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second["telemetry"]["jobs_run"] == 0
        assert second["telemetry"]["cache_hits"] == 6
        assert second["benchmarks"] == first["benchmarks"]

        events_seen = [
            json.loads(line)["event"]
            for line in open(events).read().splitlines()
        ]
        assert events_seen[0] == "sweep_started"
        assert events_seen[-1] == "sweep_finished"
        assert events_seen.count("job_cache_hit") == 6

    def test_sweep_table_output(self, capsys):
        assert main(
            ["sweep", "adpcm-encode", "--schemes", "adaptive",
             "--instructions", "2000", "--no-progress"]
        ) == 0
        out = capsys.readouterr().out
        assert "Sweep vs full-speed baseline" in out
        assert "Mean over 1 benchmarks" in out
        assert "core): 2 simulated" in out

    def test_sweep_rejects_unknown_benchmark(self, capsys):
        assert main(["sweep", "doom"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_run_rejects_bad_simcore_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCORE", "turbo")
        assert main(["run", "adpcm-encode", "--instructions", "2000"]) == 2
        assert "unknown simcore 'turbo'" in capsys.readouterr().err

    def test_sweep_rejects_bad_simcore_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCORE", "turbo")
        assert main(["sweep", "adpcm-encode"]) == 2
        assert "unknown simcore 'turbo'" in capsys.readouterr().err


class TestSimcoreEcho:
    """run/sweep --json echo the *resolved* core: arg > env > default."""

    _RUN = ["run", "adpcm-encode", "--instructions", "1500", "--json"]

    def _run_core(self, capsys, extra=()):
        import json

        assert main(self._RUN + list(extra)) == 0
        return json.loads(capsys.readouterr().out)["simcore"]

    def test_run_json_echoes_default(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_SIMCORE", raising=False)
        assert self._run_core(capsys) == "fast"

    def test_run_json_echoes_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCORE", "batch")
        assert self._run_core(capsys) == "batch"

    def test_run_json_arg_beats_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SIMCORE", "batch")
        assert self._run_core(capsys, ["--simcore", "ref"]) == "ref"

    def test_sweep_json_echoes_batch(self, capsys, monkeypatch):
        import json

        monkeypatch.delenv("REPRO_SIMCORE", raising=False)
        assert main(
            ["sweep", "adpcm-encode", "--schemes", "adaptive",
             "--instructions", "1500", "--seed", "3", "--no-progress",
             "--simcore", "batch", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["simcore"] == "batch"
