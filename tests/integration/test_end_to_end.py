"""End-to-end integration tests across the whole stack.

These run real (truncated) benchmarks through the full simulator and assert
the qualitative properties the paper's evaluation rests on.  Magnitudes are
asserted loosely -- the substrate is a simplified simulator -- but signs and
orderings are the reproduction targets.
"""

import pytest

from repro.harness.comparison import compare_schemes
from repro.harness.experiment import run_experiment
from repro.mcd.domains import DomainId


@pytest.fixture(scope="module")
def epic_adaptive():
    return run_experiment(
        "epic-decode", scheme="adaptive", max_instructions=60_000, history_stride=16
    )


@pytest.fixture(scope="module")
def epic_baseline():
    return run_experiment(
        "epic-decode", scheme="full-speed", max_instructions=60_000, history_stride=16
    )


class TestFigure7Shape:
    """The FP-domain frequency trace on epic-decode (paper Figure 7)."""

    def test_fp_frequency_drops_during_int_head(self, epic_adaptive):
        h = epic_adaptive.history
        fp = h.frequency_ghz[DomainId.FP]
        n = len(fp)
        head_min = min(fp[: n // 4])
        assert head_min < 0.85  # falling away from f_max while FP is idle

    def test_fp_frequency_recovers_in_fp_burst(self, epic_adaptive):
        h = epic_adaptive.history
        fp = h.frequency_ghz[DomainId.FP]
        n = len(fp)
        # the dramatic burst sits in the last ~20% of the run
        tail_max = max(fp[int(n * 0.75):])
        mid_min = min(fp[int(n * 0.4): int(n * 0.7)])
        # the swing amplitude grows with run length (slew-limited); at this
        # truncation a clear upward swing of several tens of MHz is expected
        assert tail_max > mid_min + 0.08

    def test_fp_queue_fills_during_burst(self, epic_adaptive):
        h = epic_adaptive.history
        occ = h.occupancy[DomainId.FP]
        n = len(occ)
        assert max(occ[int(n * 0.75):]) >= 12  # near-full during the burst
        assert max(occ[: n // 4], default=0) <= 4  # empty-ish in the head


class TestEnergyPerformance:
    def test_adaptive_saves_energy(self, epic_adaptive, epic_baseline):
        assert epic_adaptive.energy.total < epic_baseline.energy.total

    def test_perf_degradation_bounded(self, epic_adaptive, epic_baseline):
        slowdown = epic_adaptive.time_ns / epic_baseline.time_ns
        assert slowdown < 1.20

    def test_transitions_happen_on_phase_changes(self, epic_adaptive):
        assert sum(epic_adaptive.transitions.values()) > 50

    def test_mean_fp_frequency_well_below_max(self, epic_adaptive):
        """epic's FP queue is empty most of the run."""
        assert epic_adaptive.mean_frequency_ghz[DomainId.FP] < 0.9


class TestSchemeOrdering:
    """On a fast-varying benchmark the adaptive scheme must beat both
    fixed-interval baselines on EDP (the paper's headline group result)."""

    @pytest.fixture(scope="class")
    def gsm(self):
        return compare_schemes(
            "gsm-decode",
            schemes=("adaptive", "attack-decay", "pid"),
            max_instructions=60_000,
        )

    def test_all_schemes_ran(self, gsm):
        assert {s.scheme for s in gsm.schemes} == {"adaptive", "attack-decay", "pid"}

    def test_adaptive_edp_at_least_matches_fixed_interval(self, gsm):
        adaptive = gsm.result_for("adaptive").edp_improvement_pct
        pid = gsm.result_for("pid").edp_improvement_pct
        attack = gsm.result_for("attack-decay").edp_improvement_pct
        assert adaptive >= pid - 0.5
        assert adaptive >= attack - 0.5

    def test_adaptive_reacts_more_often_than_fixed_interval(self, gsm):
        """The adaptive scheme's transitions are workload-driven, not
        interval-driven: on a fast-varying app it acts far more often."""
        assert gsm.result_for("adaptive").transitions > 5 * gsm.result_for("pid").transitions
