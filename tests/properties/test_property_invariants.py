"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis.stability import (
    characteristic_roots,
    damping_ratio,
    delay_ratio_bounds,
    is_stable,
    percent_overshoot,
)
from repro.core.fsm import FsmState, TimeDelayFsm
from repro.core.scheduler import ActionScheduler
from repro.core.signals import SignalMonitor
from repro.dvfs.base import FrequencyCommand
from repro.dvfs.regulator import VoltageRegulator
from repro.mcd.cache import Cache
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import DomainId, MachineConfig
from repro.mcd.queues import IssueQueue, QueueFullError
from repro.workloads.instructions import Instruction, InstructionKind as K


# ----------------------------------------------------------------------
# Remark 1 as a property: any positive gains are stable
# ----------------------------------------------------------------------

positive = st.floats(min_value=1e-9, max_value=1e6, allow_nan=False)


class TestStabilityProperties:
    @given(k_m=positive, k_l=positive)
    def test_any_positive_gains_stable(self, k_m, k_l):
        assert is_stable(k_m, k_l)

    @given(k_m=positive, k_l=positive)
    def test_roots_solve_characteristic_polynomial(self, k_m, k_l):
        for s in characteristic_roots(k_m, k_l):
            residual = s * s + k_l * s + k_m
            scale = max(k_m, k_l * abs(s), abs(s) ** 2)
            assert abs(residual) <= 1e-7 * scale + 1e-300

    @given(k_m=positive, k_l=positive)
    def test_overshoot_bounded(self, k_m, k_l):
        assert 0.0 <= percent_overshoot(k_m, k_l) <= 100.0

    @given(k_l=st.floats(min_value=1e-6, max_value=100.0))
    def test_delay_ratio_bounds_ordered(self, k_l):
        lo, hi = delay_ratio_bounds(k_l)
        assert 0 < lo < hi
        assert hi == pytest.approx(4 * lo)  # xi range [0.5, 1] -> 4x span


# ----------------------------------------------------------------------
# FSM totality and reset
# ----------------------------------------------------------------------

signals = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False)
f_rels = st.floats(min_value=0.05, max_value=1.0, allow_nan=False)


class TestFsmProperties:
    @given(stream=st.lists(st.tuples(signals, f_rels), max_size=200))
    def test_fsm_total_and_bounded(self, stream):
        """Any input stream keeps the FSM in a defined state; triggers are
        only +-1; the counter resets after every trigger."""
        fsm = TimeDelayFsm(delay=10.0, deviation_window=1.0)
        for signal, f_rel in stream:
            trigger = fsm.step(signal, f_rel)
            assert trigger in (-1, 0, 1)
            assert fsm.state in FsmState
            if trigger != 0:
                assert fsm.counter == 0.0
                assert fsm.state is FsmState.WAIT

    @given(stream=st.lists(signals, min_size=1, max_size=100))
    def test_in_window_sample_always_resets(self, stream):
        fsm = TimeDelayFsm(delay=5.0, deviation_window=1.0)
        for signal in stream:
            fsm.step(signal, 1.0)
        fsm.step(0.0, 1.0)
        assert fsm.state is FsmState.WAIT
        assert fsm.counter == 0.0

    @given(
        delay=st.floats(min_value=1.0, max_value=100.0),
        signal=st.floats(min_value=1.5, max_value=20.0),
    )
    def test_persistent_signal_always_triggers_eventually(self, delay, signal):
        fsm = TimeDelayFsm(delay=delay, deviation_window=1.0)
        for _ in range(int(delay) + 2):
            if fsm.step(signal, 1.0) == 1:
                return
        pytest.fail("persistent out-of-window signal never triggered")


# ----------------------------------------------------------------------
# scheduler reconciliation
# ----------------------------------------------------------------------

triggers = st.sampled_from([-1, 0, 1])


class TestSchedulerProperties:
    @given(level=triggers, slope=triggers)
    def test_reconcile_sign_logic(self, level, slope):
        sched = ActionScheduler(switching_time_ns=100.0)
        action = sched.reconcile(0.0, level, slope)
        total = level + slope
        if level and slope and level != slope:
            assert action is None  # cancel
        elif total == 0:
            assert action is None  # nothing
        else:
            assert action is not None
            assert action.steps == total or action.steps == (level or slope)
            assert (action.steps > 0) == (total > 0)

    @given(seq=st.lists(st.tuples(triggers, triggers), min_size=1, max_size=50))
    def test_busy_window_covers_every_action(self, seq):
        sched = ActionScheduler(switching_time_ns=10.0)
        t = 0.0
        for level, slope in seq:
            action = sched.reconcile(t, level, slope)
            if action is not None:
                assert action.completes_ns == t + 10.0 * abs(action.steps)
                assert sched.busy(t + 1e-9) or action.steps == 0
            t = max(t + 1.0, sched._busy_until_ns)


# ----------------------------------------------------------------------
# regulator clamping and monotone slew
# ----------------------------------------------------------------------


class TestRegulatorProperties:
    @given(
        targets=st.lists(st.floats(min_value=0.0, max_value=2.0), max_size=30),
        dt=st.floats(min_value=0.1, max_value=1000.0),
    )
    def test_frequency_always_in_envelope(self, targets, dt):
        config = MachineConfig()
        reg = VoltageRegulator(DomainId.FP, config)
        for target in targets:
            reg.apply(FrequencyCommand(target_ghz=target))
            reg.advance(dt)
            assert config.f_min_ghz <= reg.current_freq_ghz <= config.f_max_ghz
            assert config.v_min <= reg.voltage <= config.v_max

    @given(dt=st.floats(min_value=0.01, max_value=100.0))
    def test_slew_never_exceeds_rate(self, dt):
        config = MachineConfig()
        reg = VoltageRegulator(DomainId.FP, config)
        reg.apply(FrequencyCommand(target_ghz=config.f_min_ghz))
        before = reg.current_freq_ghz
        reg.advance(dt)
        assert abs(reg.current_freq_ghz - before) <= reg.slew_ghz_per_ns * dt + 1e-12


# ----------------------------------------------------------------------
# queue occupancy bounds under random push/pop
# ----------------------------------------------------------------------


class TestQueueProperties:
    @given(
        ops=st.lists(st.sampled_from(["push", "pop"]), max_size=200),
        capacity=st.integers(min_value=1, max_value=32),
    )
    def test_occupancy_always_within_bounds(self, ops, capacity):
        queue = IssueQueue("q", capacity)
        index = 0
        for op in ops:
            if op == "push":
                if queue.is_full:
                    with pytest.raises(QueueFullError):
                        queue.push(
                            Instruction(index=index, kind=K.INT_ALU, pc=4 * index),
                            0.0,
                            0.0,
                        )
                else:
                    queue.push(
                        Instruction(index=index, kind=K.INT_ALU, pc=4 * index),
                        0.0,
                        0.0,
                    )
                    index += 1
            elif not queue.is_empty:
                queue.remove(queue.visible_entries(1.0)[0])
            assert 0 <= queue.occupancy <= capacity


# ----------------------------------------------------------------------
# signal monitor algebra
# ----------------------------------------------------------------------


class TestSignalProperties:
    @given(occupancies=st.lists(st.integers(min_value=0, max_value=64), min_size=2, max_size=100))
    def test_slope_telescopes(self, occupancies):
        """Sum of slopes equals last - first occupancy."""
        monitor = SignalMonitor(q_ref=4)
        slopes = [monitor.sample(occ).slope for occ in occupancies]
        assert sum(slopes) == pytest.approx(occupancies[-1] - occupancies[0])

    @given(
        occupancies=st.lists(st.integers(min_value=0, max_value=64), min_size=1, max_size=50),
        q_ref=st.integers(min_value=0, max_value=16),
    )
    def test_level_definition(self, occupancies, q_ref):
        monitor = SignalMonitor(q_ref=q_ref)
        for occ in occupancies:
            assert monitor.sample(occ).level == occ - q_ref


# ----------------------------------------------------------------------
# cache invariants
# ----------------------------------------------------------------------


class TestCacheProperties:
    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**20), max_size=300))
    def test_occupancy_never_exceeds_ways(self, addrs):
        cache = Cache("c", 4096, 2, 64)
        for addr in addrs:
            cache.access(addr)
        for ways in cache._sets:
            assert len(ways) <= cache.assoc

    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**16), min_size=1, max_size=200))
    def test_immediate_reaccess_always_hits(self, addrs):
        cache = Cache("c", 4096, 2, 64)
        for addr in addrs:
            cache.access(addr)
            assert cache.probe(addr)

    @given(addrs=st.lists(st.integers(min_value=0, max_value=2**20), max_size=200))
    def test_hit_miss_accounting(self, addrs):
        cache = Cache("c", 4096, 2, 64)
        for addr in addrs:
            cache.access(addr)
        assert cache.hits + cache.misses == len(addrs)


# ----------------------------------------------------------------------
# clock monotonicity
# ----------------------------------------------------------------------


class TestClockProperties:
    @given(
        freqs=st.lists(st.floats(min_value=0.1, max_value=2.0), min_size=1, max_size=50),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_edges_strictly_increase(self, freqs, seed):
        import random

        clock = DomainClock(1.0, jitter_sigma_ns=0.01, rng=random.Random(seed))
        last = -math.inf
        for freq in freqs:
            clock.set_frequency(freq)
            edge = clock.advance()
            assert edge > last
            last = edge
