"""Property-based end-to-end tests: random small programs through the
full simulator.

These are the strongest invariants the reproduction rests on: whatever the
workload, every instruction retires exactly once, timing is causal, queues
stay bounded, and energy accounting is internally consistent -- under every
scheme, including the pathological workloads hypothesis invents.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.harness.experiment import build_controllers
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.processor import MCDProcessor
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import Instruction, InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec

_KINDS = list(K)


@st.composite
def small_traces(draw):
    """Random dependency-correct traces of 30-150 instructions."""
    n = draw(st.integers(min_value=30, max_value=150))
    trace = []
    for i in range(n):
        kind = draw(st.sampled_from(_KINDS))
        src1 = None
        if i > 0 and draw(st.booleans()):
            src1 = draw(st.integers(min_value=max(0, i - 20), max_value=i - 1))
        addr = None
        if kind.is_mem:
            addr = 0x1000_0000 + draw(st.integers(min_value=0, max_value=1 << 16)) * 8
        taken = draw(st.booleans()) if kind is K.BRANCH else False
        trace.append(
            Instruction(
                index=i,
                kind=kind,
                pc=0x400000 + 4 * draw(st.integers(min_value=0, max_value=255)),
                src1=src1,
                addr=addr,
                taken=taken,
                target=0x400000 + 4 * draw(st.integers(min_value=0, max_value=255)),
            )
        )
    return trace


_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestEndToEndInvariants:
    @given(trace=small_traces(), seed=st.integers(min_value=0, max_value=2**16))
    @_SETTINGS
    def test_everything_retires_under_full_speed(self, trace, seed):
        result = MCDProcessor(trace, seed=seed, record_history=False).run()
        assert result.instructions == len(trace)
        assert result.time_ns > 0

    @given(trace=small_traces())
    @_SETTINGS
    def test_everything_retires_under_adaptive(self, trace):
        controllers = build_controllers("adaptive")
        result = MCDProcessor(
            trace, controllers=controllers, record_history=False
        ).run()
        assert result.instructions == len(trace)

    @given(trace=small_traces())
    @_SETTINGS
    def test_energy_accounting_consistent(self, trace):
        result = MCDProcessor(trace, record_history=False).run()
        acct = result.energy
        assert acct.chip_total == pytest.approx(
            sum(acct.by_domain.values())
        )
        assert acct.total == pytest.approx(acct.chip_total + acct.memory)
        for domain, energy in acct.by_domain.items():
            assert energy > 0.0, domain

    @given(trace=small_traces())
    @_SETTINGS
    def test_queue_bounds_hold_under_control(self, trace):
        config = MachineConfig()
        controllers = build_controllers("adaptive", machine=config)
        proc = MCDProcessor(
            trace, config=config, controllers=controllers, history_stride=1
        )
        result = proc.run()
        for domain in CONTROLLED_DOMAINS:
            occupancies = result.history.occupancy[domain]
            cap = config.queue_capacity(domain)
            assert all(0 <= occ <= cap for occ in occupancies)
            freqs = result.history.frequency_ghz[domain]
            assert all(
                config.f_min_ghz - 1e-9 <= f <= config.f_max_ghz + 1e-9
                for f in freqs
            )

    @given(
        lengths=st.lists(
            st.integers(min_value=50, max_value=400), min_size=1, max_size=4
        ),
        seed=st.integers(min_value=1, max_value=2**16),
    )
    @_SETTINGS
    def test_generated_benchmarks_always_complete(self, lengths, seed):
        """Phase-generated traces of any composition run to completion."""
        mixes = [
            {K.INT_ALU: 0.5, K.LOAD: 0.3, K.BRANCH: 0.2},
            {K.FP_ADD: 0.6, K.LOAD: 0.4},
            {K.STORE: 0.5, K.INT_MUL: 0.5},
            {K.FP_DIV: 0.3, K.INT_ALU: 0.7},
        ]
        phases = tuple(
            PhaseSpec(name=f"p{i}", length=n, mix=mixes[i % len(mixes)])
            for i, n in enumerate(lengths)
        )
        spec = BenchmarkSpec(
            name="prop-e2e", suite="mediabench", phases=phases, seed=seed
        )
        trace = generate_trace(spec)
        result = MCDProcessor(trace, record_history=False).run()
        assert result.instructions == len(trace)
