"""Unit tests for the controller interface and the full-speed baseline."""

import pytest

from repro.dvfs.base import DvfsController, FrequencyCommand, FullSpeedController
from repro.mcd.domains import DomainId


class TestFrequencyCommand:
    def test_relative_command(self):
        cmd = FrequencyCommand(steps=-2)
        assert cmd.steps == -2 and cmd.target_ghz is None

    def test_absolute_command(self):
        cmd = FrequencyCommand(target_ghz=0.5)
        assert cmd.target_ghz == 0.5 and cmd.steps == 0

    def test_rejects_both_forms(self):
        with pytest.raises(ValueError):
            FrequencyCommand(steps=1, target_ghz=0.5)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FrequencyCommand()


class TestFullSpeed:
    def test_never_commands(self):
        ctrl = FullSpeedController(DomainId.FP)
        for t in range(100):
            assert ctrl.observe(t * 4.0, t % 17, 1.0) is None
        assert ctrl.commands_issued == 0

    def test_name(self):
        assert FullSpeedController(DomainId.INT).name == "FullSpeedController"


class TestIssueCounting:
    def test_issue_increments_counter(self):
        class Once(DvfsController):
            def observe(self, now_ns, occupancy, freq_ghz):
                return self._issue(FrequencyCommand(steps=1))

        ctrl = Once(DomainId.LS)
        ctrl.observe(0.0, 0, 1.0)
        ctrl.observe(4.0, 0, 1.0)
        assert ctrl.commands_issued == 2
        ctrl.reset()
        assert ctrl.commands_issued == 0
