"""Unit tests for the PID fixed-interval baseline."""

import pytest

from repro.dvfs.pid import PidConfig, PidController
from repro.mcd.domains import DomainId


def _controller(**overrides):
    defaults = dict(interval_ns=100.0, q_ref=4.0)
    defaults.update(overrides)
    return PidController(DomainId.FP, PidConfig(**defaults))


def _drive(ctrl, occupancies, freq=1.0, dt=4.0, track_freq=False):
    """Feed samples; optionally let frequency follow commands instantly."""
    commands = []
    t, f = 0.0, freq
    for occ in occupancies:
        cmd = ctrl.observe(t, occ, f)
        if cmd is not None:
            commands.append((t, cmd))
            if track_freq:
                f = min(1.0, max(0.25, cmd.target_ghz))
        t += dt
    return commands


class TestIntervalBehaviour:
    def test_silent_within_interval(self):
        ctrl = _controller(interval_ns=1000.0)
        assert _drive(ctrl, [0] * 200) == []

    def test_one_decision_per_interval(self):
        ctrl = _controller()
        _drive(ctrl, [0] * 26 * 5)
        assert ctrl.intervals_elapsed == 5


class TestControlLaw:
    def test_empty_queue_lowers_frequency(self):
        ctrl = _controller()
        commands = _drive(ctrl, [0] * 26 * 3)
        assert commands
        for _, cmd in commands:
            assert cmd.target_ghz < 1.0

    def test_full_queue_raises_frequency(self):
        ctrl = _controller()
        commands = _drive(ctrl, [16] * 26 * 2, freq=0.5)
        assert commands
        assert commands[-1][1].target_ghz > 0.5

    def test_at_reference_no_command(self):
        ctrl = _controller()
        assert _drive(ctrl, [4] * 26 * 4) == []

    def test_integral_action_accumulates(self):
        """A persistent error keeps pushing in the same direction."""
        ctrl = _controller()
        commands = _drive(ctrl, [0] * 26 * 6, track_freq=True)
        targets = [cmd.target_ghz for _, cmd in commands]
        assert all(b < a for a, b in zip(targets, targets[1:]))

    def test_velocity_form_step_size(self):
        """First decision after a constant error e: delta = ki * e (the
        difference terms vanish when e[k]=e[k-1]=e[k-2])."""
        config = PidConfig(interval_ns=100.0, q_ref=4.0)
        ctrl = PidController(DomainId.FP, config)
        commands = _drive(ctrl, [0] * 26 * 2)
        _, cmd = commands[0]
        assert cmd.target_ghz == pytest.approx(1.0 + config.ki * (-4.0))

    def test_interval_averaging_blind_spot(self):
        """Same blind spot as attack/decay: symmetric intra-interval swings
        average to the reference and produce (almost) no action."""
        config = PidConfig(interval_ns=100.0, q_ref=4.0)
        ctrl = PidController(DomainId.FP, config)
        # 5-sample swing (period divides the 25-sample interval) averaging
        # exactly q_ref: every interval error is identically zero
        swing = [10, 10, 0, 0, 0] * 48
        assert _drive(ctrl, swing) == []


class TestIntervalSweep:
    def test_with_interval(self):
        config = PidConfig(interval_ns=10_000.0)
        short = config.with_interval(2_500.0)
        assert short.interval_ns == 2_500.0
        assert short.ki == config.ki

    def test_shorter_interval_reacts_sooner(self):
        long_ctrl = _controller(interval_ns=400.0)
        short_ctrl = _controller(interval_ns=100.0)
        long_cmds = _drive(long_ctrl, [0] * 150)
        short_cmds = _drive(short_ctrl, [0] * 150)
        assert short_cmds and long_cmds
        assert short_cmds[0][0] < long_cmds[0][0]


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            PidConfig(interval_ns=0)
        with pytest.raises(ValueError):
            PidConfig(q_ref=-1)

    def test_reset(self):
        ctrl = _controller()
        _drive(ctrl, [0] * 100)
        ctrl.reset()
        assert ctrl.intervals_elapsed == 0
        assert ctrl.commands_issued == 0
