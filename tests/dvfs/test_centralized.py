"""Tests for the centralized (coordinated) adaptive DVFS extension."""

import pytest

from repro.dvfs.centralized import (
    CentralizedCoordinator,
    CoordinatedAdaptiveController,
    build_centralized_controllers,
)
from repro.harness.experiment import run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig


class TestCoordinator:
    def test_no_backlog_allows_down(self):
        coord = CentralizedCoordinator()
        for d in CONTROLLED_DOMAINS:
            coord.note(d, 0)
        assert coord.allows_down(DomainId.FP)
        assert coord.backlogged_domains() == []

    def test_sibling_backlog_vetoes_down(self):
        coord = CentralizedCoordinator()
        coord.note(DomainId.INT, 15)  # well above q_ref 6 + margin
        coord.note(DomainId.FP, 0)
        coord.note(DomainId.LS, 0)
        assert not coord.allows_down(DomainId.FP)
        assert coord.vetoes == 1
        assert coord.backlogged_domains() == [DomainId.INT]

    def test_own_backlog_does_not_self_veto(self):
        """A domain's own backlog is handled by its level signal, not the
        coordinator."""
        coord = CentralizedCoordinator()
        coord.note(DomainId.INT, 15)
        coord.note(DomainId.FP, 0)
        coord.note(DomainId.LS, 0)
        assert coord.allows_down(DomainId.INT)

    def test_margin_respected(self):
        coord = CentralizedCoordinator(backlog_margin=5.0)
        coord.note(DomainId.INT, 10)  # q_ref 6 + 5 margin: not backlogged
        coord.note(DomainId.FP, 0)
        coord.note(DomainId.LS, 0)
        assert coord.allows_down(DomainId.FP)


class TestCoordinatedController:
    def _controller(self):
        coord = CentralizedCoordinator()
        ctrl = CoordinatedAdaptiveController(DomainId.FP, coord, machine=MachineConfig())
        return ctrl, coord

    def test_down_steps_suppressed_while_sibling_backlogged(self):
        ctrl, coord = self._controller()
        coord.note(DomainId.INT, 18)  # INT badly backlogged
        commands = []
        t = 0.0
        for _ in range(1000):
            cmd = ctrl.observe(t, 0, 1.0)  # FP queue empty: wants to go down
            if cmd is not None:
                commands.append(cmd)
            t += 4.0
        assert commands == []
        assert coord.vetoes > 0

    def test_down_steps_flow_when_machine_quiet(self):
        ctrl, coord = self._controller()
        for d in CONTROLLED_DOMAINS:
            coord.note(d, 0)
        commands = []
        t = 0.0
        for _ in range(500):
            cmd = ctrl.observe(t, 0, 1.0)
            if cmd is not None:
                commands.append(cmd)
            t += 4.0
        assert commands
        assert all(cmd.steps < 0 for cmd in commands)

    def test_up_steps_never_vetoed(self):
        ctrl, coord = self._controller()
        coord.note(DomainId.INT, 18)
        commands = []
        t = 0.0
        for _ in range(200):
            cmd = ctrl.observe(t, 16, 0.5)  # FP queue full: wants to go up
            if cmd is not None:
                commands.append(cmd)
            t += 4.0
        assert commands
        assert all(cmd.steps > 0 for cmd in commands)

    def test_reset(self):
        ctrl, _ = self._controller()
        for d in CONTROLLED_DOMAINS:
            ctrl.coordinator.note(d, 0)
        t = 0.0
        for _ in range(200):
            ctrl.observe(t, 0, 1.0)
            t += 4.0
        ctrl.reset()
        assert ctrl.commands_issued == 0
        assert ctrl.inner.scheduler.actions == 0


class TestEndToEnd:
    def test_centralized_runs_and_protects_performance(self):
        baseline = run_experiment(
            "mpeg2-decode", scheme="full-speed", max_instructions=30_000,
            record_history=False,
        )
        central = run_experiment(
            "mpeg2-decode", scheme="centralized", max_instructions=30_000,
            record_history=False,
        )
        decentralized = run_experiment(
            "mpeg2-decode", scheme="adaptive", max_instructions=30_000,
            record_history=False,
        )
        # still saves energy ...
        assert central.energy.total < baseline.energy.total
        # ... with perf cost no worse than the decentralized scheme (small
        # tolerance: different transition patterns perturb timing)
        assert central.time_ns <= decentralized.time_ns * 1.01
