"""Unit tests for the slew-rate-limited voltage regulator."""

import pytest

from repro.dvfs.base import FrequencyCommand
from repro.dvfs.regulator import VoltageRegulator
from repro.mcd.domains import DomainId, MachineConfig


def _regulator(**cfg_overrides):
    config = MachineConfig(**cfg_overrides)
    return VoltageRegulator(DomainId.FP, config), config


class TestTargeting:
    def test_starts_at_fmax(self):
        reg, config = _regulator()
        assert reg.current_freq_ghz == config.f_max_ghz
        assert not reg.in_transition

    def test_step_command_moves_target(self):
        reg, config = _regulator()
        reg.apply(FrequencyCommand(steps=-2))
        assert reg.target_freq_ghz == pytest.approx(
            config.f_max_ghz - 2 * config.step_ghz
        )
        assert reg.in_transition

    def test_absolute_command(self):
        reg, _ = _regulator()
        reg.apply(FrequencyCommand(target_ghz=0.5))
        assert reg.target_freq_ghz == pytest.approx(0.5)

    def test_target_clamped_to_envelope(self):
        reg, config = _regulator()
        reg.apply(FrequencyCommand(target_ghz=2.0))
        assert reg.target_freq_ghz == config.f_max_ghz
        reg.apply(FrequencyCommand(target_ghz=0.01))
        assert reg.target_freq_ghz == config.f_min_ghz

    def test_step_up_at_fmax_is_not_a_transition(self):
        reg, _ = _regulator()
        reg.apply(FrequencyCommand(steps=3))
        assert not reg.in_transition
        assert reg.transitions == 0


class TestSlew:
    def test_slew_rate_limits_travel(self):
        reg, config = _regulator()
        reg.apply(FrequencyCommand(target_ghz=config.f_min_ghz))
        reg.advance(73.3)  # exactly 1 MHz of travel
        assert config.f_max_ghz - reg.current_freq_ghz == pytest.approx(1e-3)

    def test_reaches_target_and_stops(self):
        reg, config = _regulator()
        reg.apply(FrequencyCommand(steps=-1))
        total = reg.switching_time_ns(1)
        reg.advance(total * 2)
        assert reg.current_freq_ghz == pytest.approx(reg.target_freq_ghz)
        assert not reg.in_transition

    def test_switching_time_matches_table1(self):
        """One 2.34 MHz step at 73.3 ns/MHz ~= 172 ns."""
        reg, config = _regulator()
        assert reg.switching_time_ns(1) == pytest.approx(
            config.step_ghz * 1e3 * 73.3
        )
        assert reg.switching_time_ns(1) == pytest.approx(171.8, abs=0.5)

    def test_full_range_traversal_time(self):
        """750 MHz at 73.3 ns/MHz ~= 55 us."""
        reg, _ = _regulator()
        assert reg.switching_time_ns(320) == pytest.approx(55.0e3, rel=0.01)

    def test_upward_slew(self):
        config = MachineConfig()
        reg = VoltageRegulator(DomainId.FP, config, initial_freq_ghz=0.25)
        reg.apply(FrequencyCommand(target_ghz=1.0))
        reg.advance(73.3 * 10)
        assert reg.current_freq_ghz == pytest.approx(0.26)

    def test_advance_rejects_negative_dt(self):
        reg, _ = _regulator()
        with pytest.raises(ValueError):
            reg.advance(-1.0)

    def test_execution_continues_through_transition(self):
        """XScale-style: current frequency is always a valid operating
        point, never zero or out of range during a transition."""
        reg, config = _regulator()
        reg.apply(FrequencyCommand(target_ghz=config.f_min_ghz))
        for _ in range(100):
            reg.advance(100.0)
            assert config.f_min_ghz <= reg.current_freq_ghz <= config.f_max_ghz


class TestVoltageTracking:
    def test_voltage_follows_frequency(self):
        reg, config = _regulator()
        assert reg.voltage == pytest.approx(config.v_max)
        reg.apply(FrequencyCommand(target_ghz=config.f_min_ghz))
        reg.advance(1e6)
        assert reg.voltage == pytest.approx(config.v_min)

    def test_voltage_midpoint(self):
        config = MachineConfig()
        mid_f = (config.f_min_ghz + config.f_max_ghz) / 2
        reg = VoltageRegulator(DomainId.FP, config, initial_freq_ghz=mid_f)
        assert reg.voltage == pytest.approx((config.v_min + config.v_max) / 2)


class TestAccounting:
    def test_transition_count(self):
        reg, _ = _regulator()
        reg.apply(FrequencyCommand(steps=-1))
        reg.apply(FrequencyCommand(steps=-1))
        reg.apply(FrequencyCommand(target_ghz=0.9))
        assert reg.transitions == 3

    def test_total_travel(self):
        reg, config = _regulator()
        reg.apply(FrequencyCommand(target_ghz=0.9))
        reg.advance(1e6)
        reg.apply(FrequencyCommand(target_ghz=1.0))
        reg.advance(1e6)
        assert reg.total_travel_ghz == pytest.approx(0.2)

    def test_relative_frequency(self):
        config = MachineConfig()
        reg = VoltageRegulator(DomainId.INT, config, initial_freq_ghz=0.5)
        assert reg.relative_frequency == pytest.approx(0.5)
