"""Unit tests for the attack/decay fixed-interval baseline."""

import pytest

from repro.dvfs.attack_decay import AttackDecayConfig, AttackDecayController
from repro.mcd.domains import DomainId


def _controller(**overrides):
    defaults = dict(interval_ns=100.0, capacity=16)
    defaults.update(overrides)
    return AttackDecayController(DomainId.FP, AttackDecayConfig(**defaults))


def _drive(ctrl, occupancies, freq=1.0, dt=4.0):
    commands = []
    t = 0.0
    for occ in occupancies:
        cmd = ctrl.observe(t, occ, freq)
        if cmd is not None:
            commands.append((t, cmd))
        t += dt
    return commands


class TestIntervalBoundary:
    def test_no_decision_before_interval_ends(self):
        ctrl = _controller(interval_ns=1000.0)
        commands = _drive(ctrl, [16] * 100)  # 400 ns < 1000 ns
        assert commands == []

    def test_first_interval_only_establishes_reference(self):
        ctrl = _controller(interval_ns=100.0)
        commands = _drive(ctrl, [16] * 26)  # one interval
        assert commands == []
        assert ctrl.intervals_elapsed == 1

    def test_decisions_happen_once_per_interval(self):
        ctrl = _controller(interval_ns=100.0)
        _drive(ctrl, [0] * 26 + [16] * 26 + [0] * 26)
        assert ctrl.intervals_elapsed == 3


class TestAttack:
    def test_utilization_jump_attacks_up(self):
        ctrl = _controller()
        commands = _drive(ctrl, [0] * 26 + [16] * 26)
        assert len(commands) == 1
        _, cmd = commands[0]
        assert cmd.target_ghz == pytest.approx(1.0 * 1.07)

    def test_utilization_drop_attacks_down(self):
        ctrl = _controller()
        commands = _drive(ctrl, [16] * 26 + [0] * 26)
        _, cmd = commands[-1]
        assert cmd.target_ghz == pytest.approx(1.0 * 0.93)

    def test_subthreshold_change_does_not_attack(self):
        """A 1-entry wiggle on a 16-entry queue is ~6% utilization -- above
        threshold; a fractional-entry average change is not."""
        ctrl = _controller(threshold=0.10)
        commands = _drive(ctrl, [8] * 26 + [9] * 26)
        if commands:
            _, cmd = commands[-1]
            assert cmd.target_ghz < 1.0  # decay, not attack


class TestDecay:
    def test_steady_workload_decays_down(self):
        ctrl = _controller(decay=0.01)
        commands = _drive(ctrl, [8] * 26 * 3)
        assert commands
        for _, cmd in commands:
            assert cmd.target_ghz == pytest.approx(0.99, abs=0.001)

    def test_zero_decay_stays_put(self):
        ctrl = _controller(decay=0.0)
        commands = _drive(ctrl, [8] * 26 * 3)
        assert commands == []


class TestIntervalAveraging:
    def test_intra_interval_swing_cancels_out(self):
        """The paper's core criticism: surges that drain again within the
        interval leave the interval average unchanged, so the fixed-interval
        scheme never attacks -- however violent the swing."""
        ctrl = _controller(decay=0.0)
        # violent 5-sample swing whose period divides the 25-sample
        # interval: every interval averages exactly 6.4 entries
        swing = [16, 16, 0, 0, 0] * 40
        commands = _drive(ctrl, swing)
        assert commands == []


class TestValidation:
    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            AttackDecayConfig(interval_ns=0)
        with pytest.raises(ValueError):
            AttackDecayConfig(attack=1.5)
        with pytest.raises(ValueError):
            AttackDecayConfig(decay=-0.1)
        with pytest.raises(ValueError):
            AttackDecayConfig(capacity=0)

    def test_reset(self):
        ctrl = _controller()
        _drive(ctrl, [0] * 60)
        ctrl.reset()
        assert ctrl.intervals_elapsed == 0
        assert _drive(ctrl, [8] * 26) == []
