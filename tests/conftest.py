"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.mcd.domains import MachineConfig
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


@pytest.fixture
def machine() -> MachineConfig:
    """The paper's Table-1 machine."""
    return MachineConfig()


@pytest.fixture
def quiet_machine() -> MachineConfig:
    """Table-1 machine without clock jitter, for deterministic timing tests."""
    return MachineConfig(jitter_sigma_ns=0.0)


@pytest.fixture
def int_phase() -> PhaseSpec:
    return PhaseSpec(
        name="int",
        length=2000,
        mix={K.INT_ALU: 0.6, K.LOAD: 0.2, K.STORE: 0.05, K.BRANCH: 0.15},
    )


@pytest.fixture
def fp_phase() -> PhaseSpec:
    return PhaseSpec(
        name="fp",
        length=2000,
        mix={K.FP_ADD: 0.4, K.FP_MUL: 0.2, K.INT_ALU: 0.2, K.LOAD: 0.2},
    )


@pytest.fixture
def tiny_benchmark(int_phase, fp_phase) -> BenchmarkSpec:
    """A small two-phase benchmark for integration tests."""
    return BenchmarkSpec(
        name="tiny-test",
        suite="mediabench",
        phases=(int_phase, fp_phase),
        notes="test fixture",
    )
