"""Unit tests for the baseline-relative metrics."""

import pytest

from repro.power.metrics import (
    RunMetrics,
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)


def _m(time_ns, energy):
    return RunMetrics(time_ns=time_ns, energy=energy, instructions=1000)


class TestRunMetrics:
    def test_edp(self):
        assert _m(10.0, 5.0).edp == pytest.approx(50.0)

    def test_ipns(self):
        assert _m(100.0, 1.0).ipns == pytest.approx(10.0)

    def test_ipns_zero_time(self):
        assert _m(0.0, 1.0).ipns == 0.0


class TestComparisons:
    def test_energy_savings(self):
        base, run = _m(10, 100), _m(10, 91)
        assert energy_savings_percent(base, run) == pytest.approx(9.0)

    def test_negative_savings_when_worse(self):
        base, run = _m(10, 100), _m(10, 110)
        assert energy_savings_percent(base, run) == pytest.approx(-10.0)

    def test_perf_degradation(self):
        base, run = _m(100, 1), _m(103, 1)
        assert performance_degradation_percent(base, run) == pytest.approx(3.0)

    def test_edp_improvement(self):
        base, run = _m(100, 100), _m(103, 91)
        expected = 100.0 * (100 * 100 - 103 * 91) / (100 * 100)
        assert edp_improvement_percent(base, run) == pytest.approx(expected)

    def test_rejects_degenerate_baselines(self):
        with pytest.raises(ValueError):
            energy_savings_percent(_m(10, 0), _m(10, 1))
        with pytest.raises(ValueError):
            performance_degradation_percent(_m(0, 1), _m(1, 1))
        with pytest.raises(ValueError):
            edp_improvement_percent(_m(0, 0), _m(1, 1))

    def test_paper_headline_numbers_are_consistent(self):
        """9% energy savings with 3% degradation improves EDP by ~6.3%."""
        base, run = _m(100.0, 100.0), _m(103.0, 91.0)
        assert energy_savings_percent(base, run) == pytest.approx(9.0)
        assert performance_degradation_percent(base, run) == pytest.approx(3.0)
        assert edp_improvement_percent(base, run) == pytest.approx(6.27, abs=0.1)
