"""Unit tests for the energy model."""

import pytest

from repro.mcd.domains import DomainId
from repro.power.model import (
    DEFAULT_DOMAIN_PARAMS,
    DomainPowerParams,
    EnergyAccount,
    PowerModel,
)


class TestDomainParams:
    def test_active_energy_scales_with_v_squared(self):
        p = DomainPowerParams(c_eff=1.0, width=4)
        low = p.active_cycle_energy(2, 0.65)
        high = p.active_cycle_energy(2, 1.30)
        assert high == pytest.approx(4.0 * low)

    def test_active_energy_grows_with_utilization(self):
        p = DomainPowerParams(c_eff=1.0, width=4)
        assert p.active_cycle_energy(4, 1.0) > p.active_cycle_energy(1, 1.0)

    def test_utilization_capped_at_one(self):
        p = DomainPowerParams(c_eff=1.0, width=2)
        assert p.active_cycle_energy(5, 1.0) == p.active_cycle_energy(2, 1.0)

    def test_gated_cycle_much_cheaper_than_active(self):
        p = DomainPowerParams(c_eff=1.0, width=4)
        assert p.gated_cycle_energy(1.0) < 0.25 * p.active_cycle_energy(1, 1.0)

    def test_gated_power_scales_with_frequency(self):
        p = DomainPowerParams(c_eff=1.0, width=4)
        assert p.gated_power(1.0, 1.0) == pytest.approx(2.0 * p.gated_power(1.0, 0.5))

    def test_leakage_independent_of_frequency(self):
        p = DomainPowerParams(c_eff=1.0, width=4)
        assert p.leakage_power(1.0) == p.leakage_power(1.0)


class TestPowerModel:
    def test_default_covers_all_domains(self):
        model = PowerModel()
        for domain in DomainId:
            assert model.active_cycle(domain, 1, 1.0) > 0

    def test_rejects_missing_domains(self):
        with pytest.raises(ValueError, match="missing"):
            PowerModel({DomainId.INT: DEFAULT_DOMAIN_PARAMS[DomainId.INT]})

    def test_background_sleeping_costs_more_than_awake(self):
        model = PowerModel()
        awake = model.background(DomainId.FP, 1.0, 1.0, 4.0, sleeping=False)
        asleep = model.background(DomainId.FP, 1.0, 1.0, 4.0, sleeping=True)
        assert asleep > awake  # sleeping accrues the gated-clock rate

    def test_dvfs_reduces_sleeping_cost(self):
        """Sleeping at low f & V must be much cheaper than at full speed --
        the mechanism behind DVFS savings on idle domains."""
        model = PowerModel()
        full = model.background(DomainId.FP, 1.20, 1.0, 4.0, sleeping=True)
        scaled = model.background(DomainId.FP, 0.65, 0.25, 4.0, sleeping=True)
        assert scaled < 0.5 * full

    def test_memory_access_energy_constant(self):
        model = PowerModel()
        assert model.memory_access() == model.memory_access() > 0


class TestEnergyAccount:
    def test_accumulates_per_domain(self):
        acct = EnergyAccount()
        acct.add(DomainId.INT, 5.0)
        acct.add(DomainId.INT, 3.0)
        acct.add(DomainId.FP, 2.0)
        assert acct.by_domain[DomainId.INT] == pytest.approx(8.0)
        assert acct.total == pytest.approx(10.0)

    def test_memory_counted_in_total(self):
        acct = EnergyAccount()
        acct.add_memory(7.0)
        assert acct.total == pytest.approx(7.0)

    def test_starts_at_zero(self):
        assert EnergyAccount().total == 0.0


class TestChipTotal:
    def test_chip_total_excludes_memory(self):
        from repro.power.model import EnergyAccount

        acct = EnergyAccount()
        acct.add(DomainId.INT, 10.0)
        acct.add_memory(5.0)
        assert acct.chip_total == pytest.approx(10.0)
        assert acct.total == pytest.approx(15.0)
