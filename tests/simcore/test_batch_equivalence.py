"""Batch-core lane-extraction edge cases and degradation behavior.

The golden-equivalence suite (run under ``REPRO_GOLDEN_OTHER=batch`` in
CI) holds the batch core to bit-identity on the standard grid; this
module covers the shapes specific to batching -- a batch of one lane,
heterogeneous lanes sharing one :class:`BatchSimulator`, lane counts
with no relation to any internal width, run-to-run determinism of the
per-lane extraction, and the numpy-free degradation path.
"""

from __future__ import annotations

import hashlib
import json
import sys
import warnings

import pytest

np = pytest.importorskip("numpy")  # noqa: F841 -- gate, not used directly

from repro.harness.experiment import build_controllers, run_experiment
from repro.harness.persistence import result_to_dict
from repro.mcd.domains import MachineConfig, transmeta_machine_config
from repro.simcore import assert_results_identical, run_batch
from repro.simcore.batchcore import BatchMCDProcessor
from repro.simcore.soa import BatchSimulator
from repro.workloads.generator import generate_trace
from repro.workloads.suite import get_benchmark

_INSTRUCTIONS = 1200


def _lane(benchmark, scheme, seed, machine=None, overrides=None):
    """One batch lane built exactly like run_experiment builds its core."""
    spec = get_benchmark(benchmark)
    machine = machine or MachineConfig()
    trace = generate_trace(spec, max_instructions=_INSTRUCTIONS, seed=seed)
    controllers = build_controllers(
        scheme, machine=machine, adaptive_overrides=overrides
    )
    return BatchMCDProcessor(
        trace=trace,
        config=machine,
        controllers=controllers,
        seed=seed,
        record_history=False,
        benchmark=spec.name,
        scheme=scheme,
    )


def _ref(benchmark, scheme, seed, machine=None, overrides=None):
    return run_experiment(
        benchmark,
        scheme=scheme,
        machine=machine,
        max_instructions=_INSTRUCTIONS,
        seed=seed,
        record_history=False,
        adaptive_overrides=overrides,
        simcore="ref",
    )


def _digest(result):
    payload = json.dumps(result_to_dict(result), sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class TestLaneExtraction:
    def test_batch_of_one(self):
        results = run_batch(
            "mcf",
            scheme="adaptive",
            seeds=[42],
            max_instructions=_INSTRUCTIONS,
            simcore="batch",
        )
        assert len(results) == 1
        assert_results_identical(
            _ref("mcf", "adaptive", 42), results[0], context="batch-of-1"
        )

    @pytest.mark.parametrize("count", (7, 13))
    def test_lane_count_not_a_block_multiple(self, count):
        # primes: not a multiple of any plausible internal block width
        seeds = list(range(1, count + 1))
        results = run_batch(
            "gzip",
            scheme="adaptive",
            seeds=seeds,
            max_instructions=_INSTRUCTIONS,
            simcore="batch",
        )
        assert len(results) == count
        for seed, got in zip(seeds, results):
            assert_results_identical(
                _ref("gzip", "adaptive", seed),
                got,
                context=f"lane {seed} of {count}",
            )

    def test_heterogeneous_lanes_in_one_simulator(self):
        """Mixed schemes, machines, and deviation windows in one batch.

        The transmeta machine lands in a different sample-period vector
        group than the defaults; the widened ``dw_level`` lane shares a
        group with plain adaptive lanes but different FSM windows; the
        pid/full-speed lanes take the scalar fallback partition.  Every
        lane must still extract its exact reference result.
        """
        wide = {"dw_level": 2.5}
        specs = [
            ("gzip", "adaptive", 1, None, None),
            ("mcf", "adaptive", 2, None, wide),
            ("gzip", "adaptive", 3, transmeta_machine_config(), None),
            ("gzip", "pid", 4, None, None),
            ("adpcm-encode", "full-speed", 5, None, None),
            ("gzip", "adaptive", 6, None, None),
        ]
        lanes = [_lane(*spec) for spec in specs]
        results = BatchSimulator(lanes).run()
        assert len(results) == len(specs)
        for spec, got in zip(specs, results):
            assert_results_identical(
                _ref(*spec), got, context=f"hetero lane {spec[:3]}"
            )

    def test_same_batch_twice_is_deterministic(self):
        digests = []
        for _ in range(2):
            results = run_batch(
                "gzip",
                scheme="adaptive",
                seeds=range(1, 6),
                max_instructions=_INSTRUCTIONS,
                simcore="batch",
            )
            digests.append([_digest(r) for r in results])
        assert digests[0] == digests[1]
        # distinct seeds must not collapse onto one trajectory
        assert len(set(digests[0])) == len(digests[0])


class TestEngineCacheInterop:
    def test_vector_path_populates_and_hits_the_cache(self, tmp_path):
        from repro.engine import EngineConfig, SweepEngine

        first = SweepEngine(EngineConfig(cache_dir=str(tmp_path)))
        a = run_batch(
            "gzip",
            scheme="adaptive",
            seeds=[1, 2],
            max_instructions=_INSTRUCTIONS,
            simcore="batch",
            engine=first,
        )
        assert first.cache.stats() == {"hits": 0, "misses": 2, "stores": 2}
        second = SweepEngine(EngineConfig(cache_dir=str(tmp_path)))
        b = run_batch(
            "gzip",
            scheme="adaptive",
            seeds=[1, 2, 3],
            max_instructions=_INSTRUCTIONS,
            simcore="batch",
            engine=second,
        )
        assert second.cache.stats() == {"hits": 2, "misses": 1, "stores": 1}
        for x, y in zip(a, b):
            assert_results_identical(x, y, context="cache round-trip")


class TestDegradation:
    def test_processor_class_warns_without_numpy(self, monkeypatch):
        import importlib.util

        from repro.simcore import processor_class, reset_degradation_warning

        real_find_spec = importlib.util.find_spec
        monkeypatch.setattr(
            importlib.util,
            "find_spec",
            lambda name, *a, **k: None
            if name == "numpy"
            else real_find_spec(name, *a, **k),
        )
        reset_degradation_warning()
        with pytest.warns(RuntimeWarning, match="numpy is not installed"):
            warnings.simplefilter("always")
            cls = processor_class("batch")
        assert cls is BatchMCDProcessor

    def test_degradation_warning_fires_once_per_resolution_burst(
        self, monkeypatch
    ):
        """Sweeps resolve the core once per lane: one warning, not L."""
        import importlib.util

        from repro.simcore import processor_class, reset_degradation_warning

        real_find_spec = importlib.util.find_spec
        monkeypatch.setattr(
            importlib.util,
            "find_spec",
            lambda name, *a, **k: None
            if name == "numpy"
            else real_find_spec(name, *a, **k),
        )
        reset_degradation_warning()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(5):
                processor_class("batch")
        hits = [
            w
            for w in caught
            if "numpy is not installed" in str(w.message)
        ]
        assert len(hits) == 1
        # the guard is resettable, so test isolation survives ordering
        reset_degradation_warning()
        with pytest.warns(RuntimeWarning, match="numpy is not installed"):
            warnings.simplefilter("always")
            processor_class("batch")

    def test_degradation_warns_exactly_once_in_each_fresh_process(self):
        """Two fresh interpreters each warn exactly once (the guard is
        per-process state, not cross-process or import-time state)."""
        import os
        import subprocess

        import repro

        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            [src_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        script = (
            "import importlib.util, warnings\n"
            "real = importlib.util.find_spec\n"
            "importlib.util.find_spec = (\n"
            "    lambda name, *a, **k: None\n"
            "    if name == 'numpy' else real(name, *a, **k)\n"
            ")\n"
            "from repro.simcore import processor_class\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    processor_class('batch')\n"
            "    processor_class('batch')\n"
            "print(sum('numpy is not installed' in str(w.message)\n"
            "          for w in caught))\n"
        )
        for _ in range(2):
            out = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            assert out.stdout.strip() == "1"

    def test_run_batch_falls_back_without_soa(self, monkeypatch):
        """With the SoA module unimportable, run_batch still delivers
        bit-identical results through the ordinary engine path."""
        monkeypatch.setitem(sys.modules, "repro.simcore.soa", None)
        results = run_batch(
            "gzip",
            scheme="adaptive",
            seeds=[1, 2],
            max_instructions=_INSTRUCTIONS,
            simcore="batch",
        )
        for seed, got in zip([1, 2], results):
            assert_results_identical(
                _ref("gzip", "adaptive", seed), got, context="soa fallback"
            )

    def test_single_processor_run_falls_back_without_soa(self, monkeypatch):
        """BatchMCDProcessor.run() alone (no BatchSimulator) degrades to
        the fast megaloop when numpy/soa are unavailable."""
        monkeypatch.setitem(sys.modules, "repro.simcore.soa", None)
        got = run_experiment(
            "gzip",
            scheme="adaptive",
            max_instructions=_INSTRUCTIONS,
            seed=9,
            record_history=False,
            simcore="batch",
        )
        assert_results_identical(
            _ref("gzip", "adaptive", 9), got, context="lone-lane fallback"
        )


class TestPrecedence:
    def test_resolved_core_precedence_includes_batch(self, monkeypatch):
        from repro.simcore import resolve_core

        monkeypatch.delenv("REPRO_SIMCORE", raising=False)
        assert resolve_core("batch") == "batch"
        monkeypatch.setenv("REPRO_SIMCORE", "batch")
        assert resolve_core() == "batch"
        # explicit argument beats the environment
        assert resolve_core("ref") == "ref"
        monkeypatch.setenv("REPRO_SIMCORE", "nope")
        with pytest.raises(ValueError):
            resolve_core()

    def test_env_var_routes_to_batch_processor(self, monkeypatch):
        import repro.harness.experiment as experiment_module

        seen = []
        real_create = experiment_module.create_processor

        def spy_create(*args, **kwargs):
            processor = real_create(*args, **kwargs)
            seen.append(type(processor))
            return processor

        monkeypatch.setattr(experiment_module, "create_processor", spy_create)
        monkeypatch.setenv("REPRO_SIMCORE", "batch")
        run_experiment(
            "adpcm-encode", max_instructions=500, seed=1, record_history=False
        )
        assert seen[-1] is BatchMCDProcessor
