"""Dynamic twin of VEC001: vector control-plane ops vs scalar arithmetic.

VEC001 statically checks that every mutated driver array in
``_GroupState`` has a scalar write-back partner; this module checks the
*values*: random lane states pushed through the vectorized
slew/voltage/energy expressions of ``control_round`` must match what the
scalar objects -- real :class:`VoltageRegulator` and
:class:`PowerModel` instances, not re-implementations -- compute for the
same inputs, elementwise and bit for bit.  The FSM/scheduler phase is
held (busy window pinned at infinity) so the round reduces to exactly
the paired ops the batch core vectorized.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

from repro.dvfs.regulator import VoltageRegulator
from repro.harness.experiment import build_controllers
from repro.mcd.domains import MachineConfig, transmeta_machine_config
from repro.power.model import PowerModel
from repro.simcore.batchcore import BatchMCDProcessor
from repro.simcore.soa import _DOM_BY_COL, _GroupState
from repro.workloads.generator import generate_trace
from repro.workloads.suite import get_benchmark

_ROUNDS = 40
_MACHINES = {
    "default": MachineConfig,
    "transmeta": transmeta_machine_config,
}


def _lanes(machine):
    lanes = []
    for bench, seed in (("gzip", 1), ("mcf", 2), ("adpcm-encode", 3)):
        spec = get_benchmark(bench)
        trace = generate_trace(spec, max_instructions=600, seed=seed)
        lanes.append(
            BatchMCDProcessor(
                trace=trace,
                config=machine,
                controllers=build_controllers("adaptive", machine=machine),
                seed=seed,
                record_history=False,
                benchmark=spec.name,
                scheme="adaptive",
            )
        )
    return lanes


def _random_target(rng, cur, max_move, f_min, f_max):
    """Exercise the three slew regimes: settled, snap range, long move."""
    roll = rng.random()
    if roll < 0.25:
        return cur
    if roll < 0.6:
        tgt = cur + rng.uniform(-1.0, 1.0) * max_move
    else:
        tgt = rng.uniform(f_min, f_max)
    return min(f_max, max(f_min, tgt))


@pytest.mark.parametrize("machine_name", sorted(_MACHINES))
def test_vector_ops_bit_identical_to_scalar(machine_name):
    machine = _MACHINES[machine_name]()
    lanes = _lanes(machine)
    state = _GroupState(lanes)
    dt = state.dt
    model = PowerModel()
    rng = random.Random(0xA55 + len(machine_name))
    f_min, f_max = machine.f_min_ghz, machine.f_max_ghz

    for rnd in range(_ROUNDS):
        regs = {}
        for i, lane in enumerate(lanes):
            state.bufs[i] = [
                rng.randrange(0, 24),
                rng.randrange(0, 24),
                rng.randrange(0, 24),
                rng.random() < 0.3,
                rng.random() < 0.3,
                rng.random() < 0.3,
            ]
            for c, dom in enumerate(_DOM_BY_COL):
                cur = rng.uniform(f_min, f_max)
                tgt = _random_target(
                    rng, cur, float(state.max_move[i, c]), f_min, f_max
                )
                reg = VoltageRegulator(dom, machine)
                reg._current_ghz = cur
                reg._target_ghz = tgt
                reg._voltage = machine.voltage_for(cur)
                reg.total_travel_ghz = rng.uniform(0.0, 50.0)
                regs[i, c] = reg
                state.cur[i, c] = cur
                state.tgt[i, c] = tgt
                state.volt[i, c] = reg._voltage
                state.travel[i, c] = reg.total_travel_ghz
                state.fsum[i, c] = rng.uniform(0.0, 1e4)
        # hold every scheduler busy: the FSM phase becomes a no-op and the
        # round is exactly the slew + voltage + background-energy ops
        state.busy_until[:] = np.inf
        fsum_before = state.fsum.copy()
        bg_before = state.bg_acc.copy()

        state.control_round(now=(rnd + 1) * dt)

        for i, lane in enumerate(lanes):
            sleeping = state.bufs[i][3:]
            assert state.bg_acc[i, 0] == (
                bg_before[i, 0] + lane._tables.fe_background_e
            )
            for c, dom in enumerate(_DOM_BY_COL):
                reg = regs[i, c]
                reg.advance(dt)
                assert state.cur[i, c] == reg._current_ghz
                assert state.volt[i, c] == reg._voltage
                assert state.travel[i, c] == reg.total_travel_ghz
                assert state.fsum[i, c] == (
                    fsum_before[i, c] + reg._current_ghz
                )
                expected = model.background(
                    dom, reg._voltage, reg._current_ghz, dt, bool(sleeping[c])
                )
                assert state.bg_acc[i, c + 1] == bg_before[i, c + 1] + expected
