"""Unit tests for the simcore package API: selection, tables, batching."""

from __future__ import annotations

import pytest

from repro.mcd.domains import MachineConfig
from repro.simcore import (
    CORES,
    DEFAULT_CORE,
    SIMCORE_ENV,
    create_processor,
    processor_class,
    resolve_core,
    run_batch,
    tables_for,
)


class TestResolveCore:
    def test_explicit_choice_wins(self, monkeypatch):
        monkeypatch.setenv(SIMCORE_ENV, "fast")
        assert resolve_core("ref") == "ref"

    def test_env_var_used_when_no_choice(self, monkeypatch):
        monkeypatch.setenv(SIMCORE_ENV, "ref")
        assert resolve_core() == "ref"

    def test_empty_env_var_means_default(self, monkeypatch):
        monkeypatch.setenv(SIMCORE_ENV, "")
        assert resolve_core() == DEFAULT_CORE

    def test_unknown_choice_raises(self):
        with pytest.raises(ValueError, match="unknown simcore 'turbo'"):
            resolve_core("turbo")

    def test_unknown_env_var_raises_and_names_the_env_var(self, monkeypatch):
        monkeypatch.setenv(SIMCORE_ENV, "typo")
        with pytest.raises(ValueError, match=SIMCORE_ENV):
            resolve_core()

    def test_cores_registry(self):
        assert CORES == ("ref", "fast", "batch")
        assert DEFAULT_CORE in CORES


class TestProcessorClass:
    def test_ref_maps_to_reference_class(self):
        from repro.mcd.processor import MCDProcessor

        assert processor_class("ref") is MCDProcessor

    def test_fast_maps_to_fast_class(self):
        from repro.mcd.processor import MCDProcessor
        from repro.simcore.fast import FastMCDProcessor

        cls = processor_class("fast")
        assert cls is FastMCDProcessor
        assert issubclass(cls, MCDProcessor)

    def test_batch_maps_to_batch_class(self):
        from repro.simcore.batchcore import BatchMCDProcessor
        from repro.simcore.fast import FastMCDProcessor

        cls = processor_class("batch")
        assert cls is BatchMCDProcessor
        assert issubclass(cls, FastMCDProcessor)

    def test_create_processor_forwards_kwargs(self, tiny_benchmark):
        from repro.workloads.generator import generate_trace

        trace = generate_trace(tiny_benchmark, seed=1)
        processor = create_processor(
            trace=trace, controllers={}, seed=1, simcore="fast"
        )
        result = processor.run()
        assert result.instructions == len(trace)


class TestSimTables:
    def test_interned_per_config(self):
        from repro.power.model import PowerModel

        machine = MachineConfig()
        a = tables_for(machine, PowerModel())
        b = tables_for(machine, PowerModel())
        assert a is b, "equal configs must share one interned table set"

    def test_period_table_matches_reciprocal(self):
        from repro.power.model import PowerModel

        machine = MachineConfig()
        tables = tables_for(machine, PowerModel())
        for freq in (machine.f_min_ghz, 0.75, machine.f_max_ghz):
            assert tables.period_ns(freq) == 1.0 / freq

    def test_voltage_table_matches_config(self):
        from repro.power.model import PowerModel

        machine = MachineConfig()
        tables = tables_for(machine, PowerModel())
        for freq in (machine.f_min_ghz, 0.8, machine.f_max_ghz):
            assert tables.voltage_for(freq) == machine.voltage_for(freq)


class TestRunBatch:
    def test_results_in_seed_order_match_single_runs(self, tiny_benchmark):
        from repro.harness.experiment import run_experiment

        seeds = (3, 1, 2)
        batch = run_batch(
            tiny_benchmark, scheme="adaptive", seeds=seeds, simcore="fast"
        )
        assert len(batch) == len(seeds)
        for seed, result in zip(seeds, batch):
            single = run_experiment(
                tiny_benchmark, scheme="adaptive", seed=seed, simcore="fast"
            )
            assert result.time_ns == single.time_ns
            assert result.energy.total == single.energy.total

    def test_empty_seeds_raises(self, tiny_benchmark):
        with pytest.raises(ValueError, match="at least one seed"):
            run_batch(tiny_benchmark, seeds=())

    def test_batch_goes_through_engine_cache(self, tiny_benchmark, tmp_path):
        from repro.engine import EngineConfig, SweepEngine

        engine = SweepEngine(
            EngineConfig(cache_dir=str(tmp_path), progress=False)
        )
        run_batch(tiny_benchmark, seeds=(1, 2), engine=engine, simcore="fast")
        summary = engine.telemetry.summary()
        assert summary["jobs_run"] == 2

        engine2 = SweepEngine(
            EngineConfig(cache_dir=str(tmp_path), progress=False)
        )
        run_batch(tiny_benchmark, seeds=(1, 2), engine=engine2, simcore="fast")
        assert engine2.telemetry.summary()["cache_hits"] == 2


class TestCacheKeying:
    def test_canonical_dict_carries_resolved_core(self, tiny_benchmark):
        from repro.engine.jobs import SweepJob

        ref_job = SweepJob.make(tiny_benchmark, seed=1, simcore="ref")
        fast_job = SweepJob.make(tiny_benchmark, seed=1, simcore="fast")
        batch_job = SweepJob.make(tiny_benchmark, seed=1, simcore="batch")
        assert ref_job.canonical_dict()["simcore"] == "ref"
        assert fast_job.canonical_dict()["simcore"] == "fast"
        assert batch_job.canonical_dict()["simcore"] == "batch"
        keys = {
            j.canonical_json() for j in (ref_job, fast_job, batch_job)
        }
        assert len(keys) == 3, "cores must never alias in the cache key"

    def test_env_var_reaches_cache_key(self, tiny_benchmark, monkeypatch):
        from repro.engine.cache import job_cache_key
        from repro.engine.jobs import SweepJob

        job = SweepJob.make(tiny_benchmark, seed=1)
        monkeypatch.setenv(SIMCORE_ENV, "ref")
        ref_key = job_cache_key(job)
        monkeypatch.setenv(SIMCORE_ENV, "fast")
        fast_key = job_cache_key(job)
        assert ref_key != fast_key
