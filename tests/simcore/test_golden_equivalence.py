"""Golden equivalence: derived cores are bit-identical to the reference.

This suite is the enforcement arm of the simcore contract: for every
controller style the repo supports, a derived-core run must produce the
*same* ``SimulationResult`` -- every float equal, every
``FrequencyStepEvent`` in the same order, the same probe-event stream --
as the reference core.  Any divergence here means the derived core
changed simulation semantics and must be fixed in ``repro.simcore``,
never papered over in the comparison.

The core under test defaults to ``fast``; CI's batch-equivalence job
re-runs the whole suite with ``REPRO_GOLDEN_OTHER=batch`` to hold the
SoA backend to the identical bar (per-lane extraction included).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.harness.experiment import run_experiment
from repro.mcd.domains import transmeta_machine_config
from repro.simcore import assert_results_identical

#: Enough instructions to exercise sleep/wake, store-buffer pressure,
#: mispredict redirects, and many DVFS steps, while keeping the full
#: (scheme x seed) grid fast enough for tier-1.
_INSTRUCTIONS = 2500

_SCHEMES = ("full-speed", "adaptive", "attack-decay", "pid", "centralized")
_SEEDS = (1, 2, 3)

#: the non-reference core this suite holds to bit-identity ("fast" by
#: default; CI's batch-equivalence job sets REPRO_GOLDEN_OTHER=batch)
_OTHER_CORE = os.environ.get("REPRO_GOLDEN_OTHER", "fast")


def _pair(benchmark, **kwargs):
    """One (ref, other-core) result pair for identical inputs."""
    # The batch core only vectorizes history-free lanes, so default
    # recording off under REPRO_GOLDEN_OTHER=batch to exercise the SoA
    # path (the history fallback is covered by test_with_history_recording,
    # which passes record_history=True explicitly).
    kwargs.setdefault("record_history", _OTHER_CORE != "batch")
    ref = run_experiment(benchmark, simcore="ref", **kwargs)
    other = run_experiment(benchmark, simcore=_OTHER_CORE, **kwargs)
    return ref, other


class TestGoldenEquivalence:
    @pytest.mark.parametrize("scheme", _SCHEMES)
    @pytest.mark.parametrize("seed", _SEEDS)
    def test_scheme_seed_grid(self, scheme, seed):
        ref, fast = _pair(
            "adpcm-encode",
            scheme=scheme,
            max_instructions=_INSTRUCTIONS,
            seed=seed,
        )
        assert_results_identical(
            ref, fast, context=f"adpcm-encode/{scheme} seed={seed}"
        )

    def test_with_history_recording(self):
        ref, fast = _pair(
            "gzip",
            scheme="adaptive",
            max_instructions=_INSTRUCTIONS,
            seed=7,
            record_history=True,
            history_stride=2,
        )
        assert_results_identical(ref, fast, context="gzip/adaptive history")

    def test_transmeta_machine(self):
        # Transmeta-style DVFS exercises the relock-pause path (domains
        # freeze during transitions), which the fast core inlines.
        ref, fast = _pair(
            "gzip",
            scheme="adaptive",
            machine=transmeta_machine_config(),
            max_instructions=_INSTRUCTIONS,
            seed=3,
        )
        assert_results_identical(ref, fast, context="gzip/adaptive transmeta")

    def test_observed_run(self):
        ref, fast = _pair(
            "gzip",
            scheme="adaptive",
            max_instructions=_INSTRUCTIONS,
            seed=5,
            obs=True,
        )
        # probe_summary is compared too (minus wall-clock profile timings,
        # which differ between any two runs of either core)
        assert_results_identical(ref, fast, context="gzip/adaptive obs")


class TestProbeEventStream:
    def test_probe_jsonl_byte_identical(self, tmp_path):
        """The full probe-event JSONL must match byte-for-byte.

        Profile events carry wall-clock measurements (``wall_s``) and are
        excluded; every simulation-derived event line -- samples, gauges,
        histograms, freq_step events -- must be byte-identical.
        """
        from repro.obs import ObsConfig, Observability

        streams = {}
        for core in ("ref", _OTHER_CORE):
            obs = Observability(ObsConfig())
            run_experiment(
                "gzip",
                scheme="adaptive",
                max_instructions=_INSTRUCTIONS,
                seed=5,
                obs=obs,
                simcore=core,
            )
            jsonl = tmp_path / f"metrics-{core}.jsonl"
            chrome = tmp_path / f"trace-{core}.json"
            obs.write_trace_files(str(jsonl), str(chrome))
            streams[core] = [
                line
                for line in jsonl.read_bytes().splitlines()
                if b'"kind": "profile"' not in line
            ]
        assert streams["ref"], "expected a non-empty probe-event stream"
        assert streams["ref"] == streams[_OTHER_CORE]


class TestFastCoreDeterminism:
    def test_same_seed_runs_hash_identically(self):
        """Two fast-core runs with the same seed are bit-identical."""
        import hashlib

        from repro.harness.persistence import result_to_dict

        digests = []
        for _ in range(2):
            result = run_experiment(
                "gzip",
                scheme="adaptive",
                max_instructions=_INSTRUCTIONS,
                seed=11,
                record_history=True,
                simcore="fast",
            )
            payload = json.dumps(
                result_to_dict(result, include_history=True), sort_keys=True
            )
            digests.append(hashlib.sha256(payload.encode("utf-8")).hexdigest())
        assert digests[0] == digests[1]


class TestEscapeHatch:
    def test_env_var_selects_core_end_to_end(self, monkeypatch):
        """REPRO_SIMCORE routes run_experiment to the chosen class."""
        import repro.harness.experiment as experiment_module
        from repro.mcd.processor import MCDProcessor
        from repro.simcore.fast import FastMCDProcessor

        seen = []
        real_create = experiment_module.create_processor

        def spy_create(*args, **kwargs):
            processor = real_create(*args, **kwargs)
            seen.append(type(processor))
            return processor

        monkeypatch.setattr(experiment_module, "create_processor", spy_create)

        monkeypatch.setenv("REPRO_SIMCORE", "ref")
        run_experiment("adpcm-encode", max_instructions=500, seed=1)
        assert seen[-1] is MCDProcessor

        monkeypatch.setenv("REPRO_SIMCORE", "fast")
        run_experiment("adpcm-encode", max_instructions=500, seed=1)
        assert seen[-1] is FastMCDProcessor

        # explicit argument beats the environment
        monkeypatch.setenv("REPRO_SIMCORE", "fast")
        run_experiment(
            "adpcm-encode", max_instructions=500, seed=1, simcore="ref"
        )
        assert seen[-1] is MCDProcessor

    def test_unset_env_defaults_to_fast(self, monkeypatch):
        from repro.simcore import DEFAULT_CORE, resolve_core

        monkeypatch.delenv("REPRO_SIMCORE", raising=False)
        assert resolve_core() == DEFAULT_CORE == "fast"
        assert "REPRO_SIMCORE" not in os.environ
