"""Tests for the in-memory job registry and its event fan-out."""

import asyncio

from repro.serve.jobstore import JobState, JobStore


def drain(queue):
    """Collect a closed queue's backlog synchronously."""

    async def _drain():
        items = []
        while True:
            item = await queue.get()
            if item is None:
                return items
            items.append(item)

    return asyncio.run(_drain())


class TestRegistry:
    def test_ids_are_sequential_per_store(self):
        store = JobStore()
        a = store.create("run", {})
        b = store.create("sweep", {})
        assert a.id == "run-000001"
        assert b.id == "sweep-000002"
        assert store.get(a.id) is a
        assert store.get("missing") is None

    def test_counts_by_state(self):
        store = JobStore()
        a = store.create("run", {})
        store.create("run", {})
        store.set_state(a, JobState.DONE)
        assert store.counts() == {"done": 1, "queued": 1}

    def test_eviction_prefers_oldest_finished(self):
        store = JobStore(max_jobs=2)
        done = store.create("run", {})
        store.set_state(done, JobState.DONE)
        live = store.create("run", {})
        store.create("run", {})  # overflows capacity
        assert store.get(done.id) is None
        assert store.get(live.id) is live
        assert store.evicted == 1

    def test_live_jobs_never_evicted(self):
        store = JobStore(max_jobs=1)
        first = store.create("run", {})
        second = store.create("run", {})
        # both live: store tolerates temporary overflow
        assert store.get(first.id) is first
        assert store.get(second.id) is second


class TestEventStream:
    def test_history_replay_then_close_on_finished(self):
        store = JobStore()
        job = store.create("run", {})
        store.publish(job, "freq_step", {"steps": 1})
        store.publish(job, "freq_step", {"steps": -1})
        store.set_state(job, JobState.DONE)
        items = drain(store.subscribe(job))
        assert [event for _, event, _ in items] == [
            "freq_step", "freq_step", "job",
        ]
        seqs = [seq for seq, _, _ in items]
        assert seqs == sorted(seqs)

    def test_live_subscriber_sees_new_events(self):
        store = JobStore()
        job = store.create("run", {})
        queue = store.subscribe(job)
        store.publish(job, "telemetry", {"event": "job_started"})
        store.set_state(job, JobState.DONE)
        items = drain(queue)
        assert [event for _, event, _ in items] == ["telemetry", "job"]
        assert queue.closed

    def test_history_is_bounded_and_counted(self):
        store = JobStore(history_limit=3)
        job = store.create("run", {})
        for i in range(5):
            store.publish(job, "e", {"i": i})
        assert len(job.events) == 3
        assert job.history_dropped == 2
        assert [payload["i"] for _, _, payload in job.events] == [2, 3, 4]

    def test_failure_state_carries_error(self):
        store = JobStore()
        job = store.create("run", {})
        store.set_state(job, JobState.FAILED, error="boom")
        assert job.error == "boom"
        assert job.finished
        summary = job.summary()
        assert summary["error"] == "boom"
        assert summary["state"] == "failed"

    def test_unsubscribe_stops_delivery(self):
        store = JobStore()
        job = store.create("run", {})
        queue = store.subscribe(job)
        store.unsubscribe(job, queue)
        store.publish(job, "e", {})
        assert len(queue) == 0
