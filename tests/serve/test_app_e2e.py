"""End-to-end service tests: real sockets, real simulations.

One background server is shared across the module (boot cost is paid
once); each test drives it through the stdlib client exactly as the CI
smoke job and the load bench do.
"""

import json
import threading

import pytest

from repro.engine.cache import job_cache_key
from repro.engine.jobs import SweepJob
from repro.harness.experiment import run_experiment
from repro.harness.persistence import result_to_dict
from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, ServeError
from repro.serve.testing import BackgroundServer

INSTRUCTIONS = 1500
BENCH = "adpcm-encode"


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("serve-cache"))
    config = ServeConfig(
        port=0, cache_dir=cache_dir, max_batch=4, max_delay_s=0.02
    )
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


def run_spec(seed=1, **extra):
    spec = {
        "benchmark": BENCH,
        "scheme": "adaptive",
        "seed": seed,
        "max_instructions": INSTRUCTIONS,
    }
    spec.update(extra)
    return spec


class TestLifecycle:
    def test_health_and_discovery(self, client):
        assert client.health()["status"] == "ok"
        listing = client.benchmarks()
        assert BENCH in listing["benchmarks"]
        assert "adaptive" in listing["schemes"]

    def test_submit_stream_fetch_roundtrip(self, client):
        """The acceptance path: submit -> SSE to completion -> result by hash."""
        sub = client.submit_run(run_spec(seed=11))
        assert sub["state"] == "queued"
        assert len(sub["result_sha"]) == 64

        events = list(client.stream_events(sub["id"]))
        names = [frame.get("event") for frame in events]
        assert names[-1] == "end"
        assert "result" in names
        assert any(n == "freq_step" for n in names)
        # stream is ordered by sequence number
        seqs = [frame["id"] for frame in events if "id" in frame]
        assert seqs == sorted(seqs)

        terminal = [f for f in events if f.get("event") == "job"][-1]
        assert terminal["data"]["state"] == "done"

        result = client.get_result(sub["result_sha"])
        assert result["benchmark"] == BENCH
        assert result["sha"] == sub["result_sha"]

    def test_result_sha_is_the_job_cache_key(self, client):
        """The advertised hash is the engine's content address, verbatim."""
        sub = client.submit_run(run_spec(seed=12))
        job = SweepJob.make(
            BENCH, scheme="adaptive", seed=12, max_instructions=INSTRUCTIONS
        )
        assert sub["result_sha"] == job_cache_key(job)

    def test_coalesced_result_matches_direct_run_experiment(self, client):
        sub = client.submit_run(run_spec(seed=13))
        client.wait_for_job(sub["id"])
        served = client.get_result(sub["result_sha"])
        served.pop("sha")

        direct = result_to_dict(
            run_experiment(
                BENCH,
                scheme="adaptive",
                seed=13,
                max_instructions=INSTRUCTIONS,
                record_history=False,
            )
        )
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_concurrent_submissions_coalesce(self, client, server):
        before = client.stats()["coalescer"]["run_batch_calls"]
        seeds = list(range(20, 26))
        subs = []
        lock = threading.Lock()

        def submit(seed):
            c = ServeClient(*server.address)
            try:
                sub = c.submit_run(run_spec(seed=seed))
            finally:
                c.close()
            with lock:
                subs.append(sub)

        threads = [
            threading.Thread(target=submit, args=(seed,)) for seed in seeds
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for sub in subs:
            final = client.wait_for_job(sub["id"])
            assert final["state"] == "done", final
        after = client.stats()["coalescer"]["run_batch_calls"]
        # 6 submissions, max_batch 4 -> at most ceil(6/4)=2 backend ticks
        assert after - before <= 2

    def test_traced_run_streams_probe_events(self, client):
        sub = client.submit_run(
            run_spec(seed=31, trace=True, obs={"sample_stride": 8})
        )
        assert sub["coalesced"] is False
        kinds = set()
        for frame in client.stream_events(sub["id"]):
            if frame.get("event") == "probe":
                kinds.add(frame["data"].get("kind"))
        assert "sample" in kinds
        assert "freq_step" in kinds

    def test_sweep_submission(self, client):
        sub = client.submit_sweep({
            "benchmarks": [BENCH],
            "schemes": ["adaptive", "pid"],
            "seeds": [1],
            "max_instructions": INSTRUCTIONS,
        })
        assert sub["jobs"] == 2
        events = list(client.stream_events(sub["id"]))
        names = [f.get("event") for f in events]
        assert "telemetry" in names
        results = [f for f in events if f.get("event") == "result"]
        assert len(results) == 2
        for frame, sha in zip(results, sub["result_shas"]):
            assert frame["data"]["sha"] == sha
            fetched = client.get_result(sha)
            assert fetched["benchmark"] == BENCH

    def test_job_status_endpoint(self, client):
        sub = client.submit_run(run_spec(seed=41))
        client.wait_for_job(sub["id"])
        status = client.get_job(sub["id"])
        assert status["state"] == "done"
        assert status["result_shas"] == [sub["result_sha"]]

    def test_controller_step_over_http(self, client):
        scored = client.controller_step(
            {"occupancy": [0, 4, 9, 14, 14, 9, 4, 0] * 4}
        )
        assert scored["samples"] == 32
        assert "decisions" in scored


class TestSimcoreEcho:
    """Submit responses echo the *resolved* core: arg > server > env."""

    def test_run_submit_echoes_resolved_default(self, client):
        # this server sets no default, so the env/default chain resolves
        sub = client.submit_run(run_spec(seed=51))
        assert sub["simcore"] == "fast"

    def test_run_submit_accepts_and_echoes_batch(self, client):
        sub = client.submit_run(run_spec(seed=52, simcore="batch"))
        assert sub["simcore"] == "batch"
        client.wait_for_job(sub["id"])
        served = client.get_result(sub["result_sha"])
        served.pop("sha")
        direct = result_to_dict(
            run_experiment(
                BENCH,
                scheme="adaptive",
                seed=52,
                max_instructions=INSTRUCTIONS,
                record_history=False,
                simcore="ref",
            )
        )
        # a batch-served run is bit-identical to a direct reference run
        assert json.dumps(served, sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )

    def test_sweep_submit_echoes_resolved_cores(self, client):
        sub = client.submit_sweep({
            "benchmarks": [BENCH],
            "schemes": ["adaptive"],
            "seeds": [61, 62],
            "max_instructions": INSTRUCTIONS,
            "simcore": "batch",
        })
        assert sub["simcore"] == ["batch"]


class TestErrors:
    def test_unknown_benchmark_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit_run(run_spec(benchmark="quake3"))
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.get_job("run-999999")
        assert excinfo.value.status == 404

    def test_unknown_result_hash_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.get_result("f" * 64)
        assert excinfo.value.status == 404

    def test_traversal_hash_is_404_not_file_read(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.get_result("..%2F..%2Fetc%2Fpasswd")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.request("GET", "/v1/controller/step")
        assert excinfo.value.status == 405

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.request("GET", "/v2/nothing")
        assert excinfo.value.status == 404

    def test_bad_controller_payload_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.controller_step({"occupancy": []})
        assert excinfo.value.status == 400

    def test_unknown_simcore_is_400(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit_run(run_spec(seed=53, simcore="turbo"))
        assert excinfo.value.status == 400

    def test_oversized_sweep_rejected(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit_sweep({
                "benchmarks": [BENCH],
                "schemes": ["adaptive"],
                "seeds": list(range(600)),
            })
        assert excinfo.value.status == 400


class TestObservability:
    def test_serve_requests_are_counted(self, client):
        client.health()
        stats = client.stats()
        assert stats["counters"]["events.serve_request"] >= 2
        assert stats["uptime_s"] > 0
