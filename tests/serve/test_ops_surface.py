"""The ops surface: ``GET /metrics``, ``GET /v1/spans/{id}``, and the
``repro-dvfs top`` dashboard pieces.

One background server is shared across the module; the scrape tests run
real jobs through it and then assert on the exposition text exactly as a
Prometheus server (or the dashboard) would parse it.
"""

from __future__ import annotations

import io

import pytest

from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient, ServeError
from repro.serve.testing import BackgroundServer
from repro.serve.top import (
    build_snapshot,
    histogram_quantile,
    parse_prometheus,
    render,
    run_top,
)

INSTRUCTIONS = 1500
BENCH = "adpcm-encode"


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(
        port=0, max_batch=4, max_delay_s=0.02, metrics_window_s=0.1
    )
    with BackgroundServer(config) as background:
        yield background


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


def _finished_run(client, seed=11):
    sub = client.submit_run({
        "benchmark": BENCH,
        "scheme": "adaptive",
        "seed": seed,
        "max_instructions": INSTRUCTIONS,
    })
    state = client.wait_for_job(sub["id"])
    assert state["state"] == "done"
    return sub


class TestMetricsEndpoint:
    def test_scrape_content_type_and_grammar(self, server, client):
        _finished_run(client, seed=21)
        # raw response check (content type matters to scrapers)
        import http.client

        conn = http.client.HTTPConnection(*server.address)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == (
                "text/plain; version=0.0.4; charset=utf-8"
            )
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        assert text.endswith("\n")
        assert "# TYPE repro_http_requests_total counter" in text
        assert "# TYPE repro_http_request_seconds histogram" in text

    def test_request_metrics_accumulate_with_route_labels(self, client):
        _finished_run(client, seed=22)
        client.health()
        snap = build_snapshot(parse_prometheus(client.metrics_text()))
        requests = snap["repro_http_requests_total"]
        health = [
            v for labels, v in requests.items()
            if dict(labels).get("route") == "/v1/healthz"
            and dict(labels).get("status") == "200"
        ]
        assert health and health[0] >= 1
        # latency histogram sees the same traffic
        counts = snap["repro_http_request_seconds_count"]
        assert any(
            dict(labels).get("route") == "/v1/healthz" and value >= 1
            for labels, value in counts.items()
        )

    def test_unmatched_routes_use_bounded_label(self, client):
        with pytest.raises(ServeError):
            client.request("GET", "/nope/really/not/there")
        snap = build_snapshot(parse_prometheus(client.metrics_text()))
        unmatched = [
            v for labels, v in snap["repro_http_requests_total"].items()
            if dict(labels).get("route") == "unmatched"
        ]
        assert unmatched and sum(unmatched) >= 1

    def test_engine_and_coalescer_families_populate(self, client):
        _finished_run(client, seed=23)
        snap = build_snapshot(parse_prometheus(client.metrics_text()))
        finished = [
            v for labels, v in snap["repro_engine_jobs_total"].items()
            if dict(labels).get("outcome") == "finished"
        ]
        assert finished and finished[0] >= 1
        assert sum(snap["repro_serve_coalescer_flushes_total"].values()) >= 1
        assert sum(snap["repro_serve_coalescer_batch_size_count"].values()) >= 1

    def test_scrape_gauges_sampled_at_scrape_time(self, client):
        _finished_run(client, seed=24)
        snap = build_snapshot(parse_prometheus(client.metrics_text()))
        assert snap["repro_serve_uptime_seconds"][()] > 0.0
        done = [
            v for labels, v in snap["repro_serve_jobs"].items()
            if dict(labels).get("state") == "done"
        ]
        assert done and done[0] >= 1

    def test_scrape_emits_probe_event_and_stats_rates(self, client):
        client.metrics_text()
        stats = client.stats()
        assert stats["counters"]["events.serve_metrics_scrape"] >= 1
        assert "http_requests_per_s" in stats["rates"]
        assert stats["spans"]["recorded"] >= 0


class TestSpansEndpoint:
    def test_run_trace_nests_worker_under_root(self, client):
        sub = _finished_run(client, seed=31)
        assert sub["trace_id"]
        payload = client.get_spans(sub["id"])
        assert payload["trace_id"] == sub["trace_id"]
        names = [s["name"] for s in payload["spans"]]
        assert f"run:{sub['id']}" in names
        job_spans = [
            s for s in payload["spans"] if s["name"].startswith("job:")
        ]
        assert job_spans, f"no worker span in trace: {names}"
        root = next(
            s for s in payload["spans"] if s["name"] == f"run:{sub['id']}"
        )
        assert job_spans[0]["parent_id"] == root["span_id"]
        assert job_spans[0]["trace_id"] == root["trace_id"]
        # tree view agrees
        (tree,) = payload["tree"]
        assert tree["span"]["name"] == f"run:{sub['id']}"
        assert any(
            child["span"]["name"].startswith("job:")
            for child in tree["children"]
        )

    def test_job_status_carries_trace_id(self, client):
        sub = _finished_run(client, seed=32)
        status = client.get_job(sub["id"])
        assert status["trace_id"] == sub["trace_id"]

    def test_unknown_job_404(self, client):
        with pytest.raises(ServeError) as err:
            client.get_spans("run-999999")
        assert err.value.status == 404


class TestTopDashboard:
    def test_histogram_quantile_estimates(self):
        buckets = [(0.1, 5.0), (1.0, 9.0), (float("inf"), 10.0)]
        assert histogram_quantile(0.5, buckets) == 0.1
        assert histogram_quantile(0.9, buckets) == 1.0
        # the +Inf bucket clamps to the largest finite bound
        assert histogram_quantile(1.0, buckets) == 1.0
        assert histogram_quantile(0.5, []) is None
        assert histogram_quantile(0.5, [(1.0, 0.0)]) is None

    def test_render_is_pure_and_shows_routes(self, client):
        _finished_run(client, seed=41)
        snap = build_snapshot(parse_prometheus(client.metrics_text()))
        screen = render(snap)
        assert "repro-dvfs top" in screen
        assert "/v1/runs" in screen
        assert "engine" in screen and "coalesce" in screen
        assert render(snap) == screen  # same input, same screen

    def test_render_rates_from_successive_snapshots(self):
        prev = build_snapshot(parse_prometheus(
            'repro_http_requests_total{method="GET",route="/x",status="200"} 10\n'
        ))
        cur = build_snapshot(parse_prometheus(
            'repro_http_requests_total{method="GET",route="/x",status="200"} 30\n'
        ))
        screen = render(cur, prev, interval_s=2.0)
        assert "10.0" in screen  # (30-10)/2 requests per second

    def test_render_handles_empty_scrape(self):
        assert "(no requests recorded yet)" in render({})

    def test_run_top_against_live_server(self, server, client):
        _finished_run(client, seed=42)
        out = io.StringIO()
        host, port = server.address
        code = run_top(
            host=host, port=port, interval_s=0.05, iterations=2,
            out=out, clear=False,
        )
        assert code == 0
        text = out.getvalue()
        assert text.count("repro-dvfs top") == 2
        assert "\x1b[2J" not in text

    def test_run_top_unreachable_is_an_error(self):
        out = io.StringIO()
        code = run_top(
            host="127.0.0.1", port=1, interval_s=0.01, iterations=1, out=out
        )
        assert code == 1


class TestCliWiring:
    def test_top_subcommand_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["top", "--once", "--port", "9999", "--interval", "0.5"]
        )
        assert args.func.__name__ == "_cmd_top"
        assert args.once and args.port == 9999
