"""Tests for the stateless controller-scoring endpoint logic."""

import pytest

from repro.core.config import default_adaptive_config
from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import DomainId, MachineConfig
from repro.serve.controller import MAX_SAMPLES, score_trajectory
from repro.serve.http import BadRequest

RAMP = [0, 2, 8, 12, 14, 14, 12, 6, 2, 0] * 5


class TestValidation:
    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"occupancy": []},
            {"occupancy": "nope"},
            {"occupancy": [1, 2, "x"]},
            {"occupancy": [1, -2]},
            {"occupancy": [True, 1]},
            {"occupancy": [1], "domain": "dram"},
            {"occupancy": [1], "machine": "fast"},
            {"occupancy": [1], "machine": {"nonsense_field": 1}},
            {"occupancy": [1], "config": {"nonsense_field": 1}},
            {"occupancy": [1], "initial_freq_ghz": "quick"},
            "not an object",
        ],
    )
    def test_bad_payloads_rejected(self, payload):
        with pytest.raises(BadRequest):
            score_trajectory(payload)

    def test_trajectory_length_capped(self):
        with pytest.raises(BadRequest) as excinfo:
            score_trajectory({"occupancy": [0] * (MAX_SAMPLES + 1)})
        assert "too long" in str(excinfo.value)


class TestScoring:
    def test_deterministic_across_calls(self):
        payload = {"occupancy": RAMP, "include_trace": True}
        assert score_trajectory(payload) == score_trajectory(payload)

    def test_matches_direct_controller_replay(self):
        """The endpoint replays the real controller, never a reimplementation."""
        machine = MachineConfig()
        config = default_adaptive_config(DomainId.INT)
        controller = AdaptiveDvfsController(DomainId.INT, config, machine)
        freq = machine.f_max_ghz
        expected = []
        now_ns = 0.0
        for index, q in enumerate(RAMP):
            command = controller.observe(now_ns, q, freq)
            if command is not None:
                freq = machine.clamp_frequency(
                    freq + command.steps * machine.step_ghz
                )
                expected.append((index, command.steps, freq))
            now_ns += machine.sample_period_ns

        scored = score_trajectory({"occupancy": RAMP})
        got = [
            (d["index"], d["steps"], d["freq_ghz"])
            for d in scored["decisions"]
        ]
        assert got == expected
        assert scored["final_freq_ghz"] == freq

    def test_high_occupancy_steps_up_low_steps_down(self):
        surge = score_trajectory({
            "occupancy": [14] * 60,
            "initial_freq_ghz": 0.6,
        })
        assert surge["final_freq_ghz"] > 0.6

        idle = score_trajectory({
            "occupancy": [0] * 60,
            "initial_freq_ghz": 0.6,
        })
        assert idle["final_freq_ghz"] < 0.6

    def test_frequency_stays_clamped(self):
        scored = score_trajectory({
            "occupancy": [14] * 200,
            "include_trace": True,
        })
        machine = MachineConfig()
        assert all(
            machine.f_min_ghz <= f <= machine.f_max_ghz
            for f in scored["frequency_ghz"]
        )

    def test_domain_sets_qref_default(self):
        int_cfg = score_trajectory({"occupancy": [1], "domain": "int"})
        ls_cfg = score_trajectory({"occupancy": [1], "domain": "ls"})
        assert int_cfg["config"]["q_ref"] != ls_cfg["config"]["q_ref"]

    def test_config_overrides_apply(self):
        scored = score_trajectory({
            "occupancy": [1], "config": {"q_ref": 9.5},
        })
        assert scored["config"]["q_ref"] == 9.5

    def test_trace_only_when_asked(self):
        assert "frequency_ghz" not in score_trajectory({"occupancy": [1]})
        traced = score_trajectory({"occupancy": [1, 2], "include_trace": True})
        assert len(traced["frequency_ghz"]) == 2
