"""Tests for the hand-rolled HTTP/1.1 layer."""

import asyncio
import json

import pytest

from repro.serve.http import (
    BadRequest,
    Request,
    Response,
    StreamResponse,
    handle_connection,
    read_request,
    server_address,
)


def parse(data: bytes):
    async def _main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_main())


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /v1/healthz?x=1 HTTP/1.1\r\nHost: h\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/healthz"
        assert request.query == {"x": "1"}
        assert request.headers["host"] == "h"
        assert request.body == b""

    def test_post_with_body(self):
        body = json.dumps({"a": 1}).encode()
        raw = (
            b"POST /v1/runs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"a": 1}

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_percent_decoded_path(self):
        request = parse(b"GET /v1/a%20b HTTP/1.1\r\n\r\n")
        assert request.path == "/v1/a b"

    @pytest.mark.parametrize(
        "raw",
        [
            b"NONSENSE\r\n\r\n",
            b"GET /x SPDY/3\r\n\r\n",
            b"GET /x HTTP/1.1\r\nbadheader\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
            b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ],
    )
    def test_malformed_requests_raise(self, raw):
        with pytest.raises(BadRequest):
            parse(raw)

    def test_oversized_body_is_413(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 99999999999\r\n\r\n"
        with pytest.raises(BadRequest) as excinfo:
            parse(raw)
        assert excinfo.value.status == 413

    def test_bad_json_body(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n{{{{"
        with pytest.raises(BadRequest):
            parse(raw).json()


class TestResponse:
    def test_json_roundtrip(self):
        response = Response.json({"ok": True})
        assert response.status == 200
        assert json.loads(response.body) == {"ok": True}

    def test_error_shape(self):
        response = Response.error(404, "nope")
        assert response.status == 404
        assert json.loads(response.body) == {"error": "nope", "status": 404}

    def test_head_bytes_carry_length_and_connection(self):
        response = Response.json({"k": 1})
        head = response.head_bytes(keep_alive=True).decode()
        assert f"Content-Length: {len(response.body)}" in head
        assert "Connection: keep-alive" in head
        assert "Connection: close" in response.head_bytes(False).decode()

    def test_stream_head_closes_connection(self):
        async def _gen():
            yield b""

        head = StreamResponse(_gen()).head_bytes().decode()
        assert "Connection: close" in head
        assert "text/event-stream" in head


class TestHandleConnection:
    """Full request/response loops over a real localhost socket."""

    def _roundtrip(self, dispatch, payloads):
        async def _main():
            server = await asyncio.start_server(
                lambda r, w: handle_connection(r, w, dispatch),
                host="127.0.0.1",
                port=0,
            )
            host, port = server_address(server)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"".join(payloads))
            await writer.drain()
            writer.write_eof()
            data = await reader.read()
            writer.close()
            server.close()
            await server.wait_closed()
            return data

        return asyncio.run(_main())

    def test_keep_alive_serves_multiple_requests(self):
        calls = []

        async def dispatch(request: Request):
            calls.append(request.path)
            return Response.json({"path": request.path})

        data = self._roundtrip(
            dispatch,
            [
                b"GET /one HTTP/1.1\r\n\r\n",
                b"GET /two HTTP/1.1\r\nConnection: close\r\n\r\n",
            ],
        )
        assert calls == ["/one", "/two"]
        assert data.count(b"HTTP/1.1 200") == 2

    def test_handler_crash_becomes_500_without_traceback(self):
        async def dispatch(request: Request):
            raise ValueError("secret internals")

        data = self._roundtrip(dispatch, [b"GET / HTTP/1.1\r\n\r\n"])
        assert b"HTTP/1.1 500" in data
        assert b"ValueError" in data
        assert b"secret internals" not in data

    def test_malformed_request_gets_400(self):
        async def dispatch(request: Request):  # pragma: no cover
            return Response.json({})

        data = self._roundtrip(dispatch, [b"NOT-HTTP\r\n\r\n"])
        assert b"HTTP/1.1 400" in data

    def test_stream_response_ends_connection(self):
        async def chunks():
            yield b"data: 1\n\n"
            yield b"data: 2\n\n"

        async def dispatch(request: Request):
            return StreamResponse(chunks())

        data = self._roundtrip(dispatch, [b"GET /events HTTP/1.1\r\n\r\n"])
        assert b"data: 1" in data and b"data: 2" in data
        assert data.count(b"HTTP/1.1") == 1  # no second response possible
