"""Tests for SSE framing and the drop-oldest subscriber queue."""

import asyncio

import pytest

from repro.serve.sse import DropOldestQueue, format_sse


class TestFormatSse:
    def test_dict_payload_is_json(self):
        frame = format_sse({"a": 1}, event="sample", event_id=7).decode()
        assert frame == 'id: 7\nevent: sample\ndata: {"a": 1}\n\n'

    def test_string_payload_passes_through(self):
        assert format_sse("hello") == b"data: hello\n\n"

    def test_multiline_data_split_per_spec(self):
        frame = format_sse("line1\nline2").decode()
        assert frame == "data: line1\ndata: line2\n\n"

    def test_minimal_frame(self):
        assert format_sse({"x": 2}) == b'data: {"x": 2}\n\n'


class TestDropOldestQueue:
    def test_fifo_order(self):
        async def _main():
            queue = DropOldestQueue(maxsize=8)
            for i in range(3):
                queue.put(i)
            return [await queue.get() for _ in range(3)]

        assert asyncio.run(_main()) == [0, 1, 2]

    def test_drops_oldest_when_full(self):
        queue = DropOldestQueue(maxsize=2)
        queue.put("a")
        queue.put("b")
        queue.put("c")
        assert queue.dropped == 1
        assert len(queue) == 2

        async def _drain():
            return [await queue.get(), await queue.get()]

        assert asyncio.run(_drain()) == ["b", "c"]

    def test_close_yields_none_after_backlog(self):
        async def _main():
            queue = DropOldestQueue()
            queue.put(1)
            queue.close()
            return [await queue.get(), await queue.get()]

        assert asyncio.run(_main()) == [1, None]

    def test_put_after_close_is_ignored(self):
        queue = DropOldestQueue()
        queue.close()
        queue.put("late")
        assert len(queue) == 0

    def test_get_wakes_on_concurrent_put(self):
        async def _main():
            queue = DropOldestQueue()

            async def producer():
                await asyncio.sleep(0.01)
                queue.put("item")

            task = asyncio.get_event_loop().create_task(producer())
            value = await asyncio.wait_for(queue.get(), timeout=5)
            await task
            return value

        assert asyncio.run(_main()) == "item"

    def test_get_wakes_on_concurrent_close(self):
        async def _main():
            queue = DropOldestQueue()

            async def closer():
                await asyncio.sleep(0.01)
                queue.close()

            task = asyncio.get_event_loop().create_task(closer())
            value = await asyncio.wait_for(queue.get(), timeout=5)
            await task
            return value

        assert asyncio.run(_main()) is None

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DropOldestQueue(maxsize=0)
