"""Tests for the request coalescer.

The contract under test (the service's central claim): N concurrent
single-run submissions produce at most ceil(N / max_batch) ``run_batch``
calls, and every caller gets a result byte-identical to what a direct
serial ``run_experiment`` would have produced.
"""

import asyncio
import json
import math

import pytest

from repro.engine.jobs import SweepJob
from repro.harness.experiment import run_experiment
from repro.harness.persistence import result_to_dict
from repro.serve.coalescer import RequestCoalescer, group_key


def make_job(seed=1, **kwargs):
    kwargs.setdefault("max_instructions", 1500)
    return SweepJob.make("adpcm-encode", seed=seed, **kwargs)


class TestGroupKey:
    def test_seed_is_not_part_of_the_key(self):
        assert group_key(make_job(seed=1)) == group_key(make_job(seed=2))

    def test_everything_else_is(self):
        base = group_key(make_job())
        assert group_key(make_job(scheme="pid")) != base
        assert group_key(make_job(max_instructions=2000)) != base
        assert group_key(make_job(record_history=True)) != base


class FakeBatcher:
    """Records run_batch calls; returns one marker result per seed."""

    def __init__(self):
        self.calls = []

    def __call__(self, benchmark, scheme="adaptive", seeds=(), **kwargs):
        seeds = list(seeds)
        self.calls.append({"benchmark": benchmark.name, "scheme": scheme,
                           "seeds": seeds})
        return [f"{benchmark.name}/{scheme}/seed={s}" for s in seeds]


def submit_all(coalescer, jobs):
    async def _main():
        results = await asyncio.gather(
            *[coalescer.submit(job) for job in jobs]
        )
        await coalescer.drain()
        return results

    return asyncio.run(_main())


class TestBatching:
    def test_full_batch_cuts_immediately(self):
        batcher = FakeBatcher()
        coalescer = RequestCoalescer(
            max_batch=4, max_delay_s=60.0, run_batch_fn=batcher
        )
        jobs = [make_job(seed=s) for s in range(1, 5)]
        results = submit_all(coalescer, jobs)
        # one batch, one group, seeds in submission order
        assert len(batcher.calls) == 1
        assert batcher.calls[0]["seeds"] == [1, 2, 3, 4]
        assert results == [f"adpcm-encode/adaptive/seed={s}" for s in (1, 2, 3, 4)]

    def test_partial_batch_flushes_on_timer(self):
        batcher = FakeBatcher()
        coalescer = RequestCoalescer(
            max_batch=8, max_delay_s=0.01, run_batch_fn=batcher
        )
        results = submit_all(coalescer, [make_job(seed=7)])
        assert len(batcher.calls) == 1
        assert results == ["adpcm-encode/adaptive/seed=7"]

    def test_ceiling_bound_on_run_batch_calls(self):
        batcher = FakeBatcher()
        n, max_batch = 10, 4
        coalescer = RequestCoalescer(
            max_batch=max_batch, max_delay_s=0.01, run_batch_fn=batcher
        )
        jobs = [make_job(seed=s) for s in range(n)]
        submit_all(coalescer, jobs)
        assert len(batcher.calls) <= math.ceil(n / max_batch)
        assert sorted(s for c in batcher.calls for s in c["seeds"]) == list(range(n))

    def test_heterogeneous_jobs_split_into_groups(self):
        batcher = FakeBatcher()
        coalescer = RequestCoalescer(
            max_batch=4, max_delay_s=0.01, run_batch_fn=batcher
        )
        jobs = [
            make_job(seed=1),
            make_job(seed=2, scheme="pid"),
            make_job(seed=3),
        ]
        results = submit_all(coalescer, jobs)
        # one flush, two groups -> two run_batch calls
        assert len(batcher.calls) == 2
        by_scheme = {c["scheme"]: c["seeds"] for c in batcher.calls}
        assert by_scheme == {"adaptive": [1, 3], "pid": [2]}
        # each caller still got its own seed's result
        assert results[1] == "adpcm-encode/pid/seed=2"

    def test_batch_failure_propagates_to_all_awaiters(self):
        def exploding(*args, **kwargs):
            raise RuntimeError("backend down")

        coalescer = RequestCoalescer(
            max_batch=2, max_delay_s=0.01, run_batch_fn=exploding
        )

        async def _main():
            return await asyncio.gather(
                coalescer.submit(make_job(seed=1)),
                coalescer.submit(make_job(seed=2)),
                return_exceptions=True,
            )

        results = asyncio.run(_main())
        assert all(isinstance(r, RuntimeError) for r in results)
        assert all("backend down" in str(r) for r in results)

    def test_stats_accounting(self):
        batcher = FakeBatcher()
        coalescer = RequestCoalescer(
            max_batch=2, max_delay_s=0.01, run_batch_fn=batcher
        )
        submit_all(coalescer, [make_job(seed=s) for s in range(4)])
        stats = coalescer.stats()
        assert stats["submitted"] == 4
        assert stats["batched_runs"] == 4
        assert stats["run_batch_calls"] == len(batcher.calls)
        assert stats["pending"] == 0

    @pytest.mark.parametrize("bad", [dict(max_batch=0), dict(max_delay_s=-1)])
    def test_invalid_config_rejected(self, bad):
        with pytest.raises(ValueError):
            RequestCoalescer(**bad)


class TestSerialIdentity:
    """Coalesced execution is byte-identical to serial run_experiment."""

    N = 6
    MAX_BATCH = 3

    def test_concurrent_submissions_match_serial_results(self):
        counting = {"calls": 0}
        from repro.simcore import run_batch

        def counted_run_batch(*args, **kwargs):
            counting["calls"] += 1
            return run_batch(*args, **kwargs)

        coalescer = RequestCoalescer(
            max_batch=self.MAX_BATCH,
            max_delay_s=0.05,
            run_batch_fn=counted_run_batch,
        )
        jobs = [make_job(seed=seed) for seed in range(1, self.N + 1)]
        coalesced = submit_all(coalescer, jobs)

        assert counting["calls"] <= math.ceil(self.N / self.MAX_BATCH)

        for job, result in zip(jobs, coalesced):
            serial = run_experiment(
                "adpcm-encode",
                scheme="adaptive",
                seed=job.seed,
                max_instructions=1500,
                record_history=False,
            )
            coalesced_bytes = json.dumps(
                result_to_dict(result), sort_keys=True
            )
            serial_bytes = json.dumps(result_to_dict(serial), sort_keys=True)
            assert coalesced_bytes == serial_bytes, (
                f"seed {job.seed}: coalesced result diverged from serial"
            )
