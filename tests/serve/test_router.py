"""Tests for method/path routing with parameter captures."""

from repro.serve.router import Router


async def _h(request):  # pragma: no cover - never awaited by these tests
    return None


class TestRouter:
    def _router(self):
        router = Router()
        router.get("/v1/runs/{id}", _h)
        router.get("/v1/runs/{id}/events", _h)
        router.post("/v1/runs", _h)
        router.get("/v1/healthz", _h)
        return router

    def test_literal_match(self):
        match = self._router().resolve("GET", "/v1/healthz")
        assert match.handler is _h
        assert match.params == {}

    def test_param_capture(self):
        match = self._router().resolve("GET", "/v1/runs/run-000042")
        assert match.handler is _h
        assert match.params == {"id": "run-000042"}

    def test_nested_param_route(self):
        match = self._router().resolve("GET", "/v1/runs/abc/events")
        assert match.params == {"id": "abc"}

    def test_unknown_path_is_404(self):
        match = self._router().resolve("GET", "/v1/nothing")
        assert match.handler is None
        assert match.allowed == []

    def test_wrong_method_is_405_with_allowed(self):
        match = self._router().resolve("DELETE", "/v1/runs")
        assert match.handler is None
        assert match.allowed == ["POST"]

    def test_method_is_case_insensitive(self):
        assert self._router().resolve("get", "/v1/healthz").handler is _h

    def test_empty_segment_does_not_match_param(self):
        match = self._router().resolve("GET", "/v1/runs//events")
        assert match.handler is None

    def test_trailing_slash_equivalence(self):
        assert self._router().resolve("GET", "/v1/healthz/").handler is _h
