"""Unit tests for the front-end domain (fetch/dispatch/retire)."""

import math

import pytest

from repro.mcd.branch import CombinedPredictor
from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.frontend import FrontEnd
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.mcd.synchronization import SynchronizationInterface
from repro.workloads.instructions import Instruction, InstructionKind as K


def _trace_of(kinds, pc_base=0x400000):
    trace = []
    for i, kind in enumerate(kinds):
        addr = 0x1000_0000 + 8 * i if kind.is_mem else None
        trace.append(
            Instruction(index=i, kind=kind, pc=pc_base + 4 * i, addr=addr)
        )
    return trace


def _frontend(trace, config=None):
    config = config or MachineConfig(jitter_sigma_ns=0.0)
    clocks = {
        DomainId.FRONT_END: DomainClock(config.f_max_ghz),
        DomainId.INT: DomainClock(config.f_max_ghz),
        DomainId.FP: DomainClock(config.f_max_ghz),
        DomainId.LS: DomainClock(config.f_max_ghz),
    }
    queues = {d: IssueQueue(d.value, config.queue_capacity(d)) for d in CONTROLLED_DOMAINS}
    rob = ReorderBuffer(config.rob_size)
    fe = FrontEnd(
        trace=trace,
        clock=clocks[DomainId.FRONT_END],
        rob=rob,
        queues=queues,
        domain_clocks=clocks,
        hierarchy=MemoryHierarchy.from_config(config),
        predictor=CombinedPredictor.from_config(config),
        sync=SynchronizationInterface(0.0),
        config=config,
    )
    return fe, rob, queues


class TestDispatch:
    def test_dispatch_width(self):
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 10))
        # first cycle pays a cold I-cache miss; run until dispatch flows
        t, dispatched = 0.0, 0
        while dispatched == 0 and t < 200:
            dispatched = fe.cycle(t)
            t += 1.0
        assert dispatched == 4

    def test_routes_by_domain(self):
        fe, rob, queues = _frontend(
            _trace_of([K.INT_ALU, K.FP_ADD, K.LOAD, K.INT_MUL])
        )
        t = 0.0
        while not fe.trace_exhausted and t < 300:
            fe.cycle(t)
            t += 1.0
        assert queues[DomainId.INT].occupancy == 2
        assert queues[DomainId.FP].occupancy == 1
        assert queues[DomainId.LS].occupancy == 1

    def test_rob_allocation_matches_dispatch(self):
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 6))
        t = 0.0
        while not fe.trace_exhausted and t < 300:
            fe.cycle(t)
            t += 1.0
        assert rob.occupancy == 6

    def test_queue_full_stalls_dispatch(self):
        config = MachineConfig(jitter_sigma_ns=0.0)
        fe, rob, queues = _frontend(
            _trace_of([K.INT_ALU] * 40), config
        )
        t = 0.0
        while t < 400:
            fe.cycle(t)
            t += 1.0
        assert queues[DomainId.INT].occupancy == config.int_queue_size
        assert fe.last_stall == "queue_full"
        assert fe.next_index == config.int_queue_size

    def test_rob_full_stalls_dispatch(self):
        config = MachineConfig(jitter_sigma_ns=0.0, rob_size=8, int_queue_size=20)
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 40), config)
        t = 0.0
        while t < 400:
            fe.cycle(t)
            t += 1.0
        assert rob.occupancy == 8
        assert fe.last_stall == "rob_full"


class TestBranchHandling:
    def test_mispredict_blocks_fetch_until_resolution(self):
        # a cold branch (taken) is mispredicted: BTB is empty
        trace = [
            Instruction(index=0, kind=K.BRANCH, pc=0x400000, taken=True, target=0x400100),
            Instruction(index=1, kind=K.INT_ALU, pc=0x400100),
        ]
        fe, rob, queues = _frontend(trace)
        t = 0.0
        while fe.next_index == 0 and t < 300:
            fe.cycle(t)
            t += 1.0
        assert fe.next_index == 1  # branch dispatched, then fetch blocked
        for _ in range(5):
            assert fe.cycle(t) == 0
            assert fe.last_stall == "branch"
            t += 1.0
        # resolve the branch: completes now, penalty then elapses
        rob.mark_done(0, t)
        blocked_until = t + fe.config.mispredict_penalty_cycles
        while t < blocked_until:
            assert fe.cycle(t) == 0
            assert fe.last_stall == "branch"
            t += 1.0
        # redirect cleared; the target line may still take an I-cache miss,
        # but fetch resumes within a bounded number of cycles
        dispatched = 0
        deadline = t + 200
        while dispatched == 0 and t < deadline:
            dispatched = fe.cycle(t)
            assert fe.last_stall != "branch"
            t += 1.0
        assert dispatched == 1

    def test_stall_hint_unknown_until_branch_issues(self):
        trace = [
            Instruction(index=0, kind=K.BRANCH, pc=0x400000, taken=True, target=0x400100),
            Instruction(index=1, kind=K.INT_ALU, pc=0x400100),
        ]
        fe, rob, queues = _frontend(trace)
        t = 0.0
        while fe.next_index == 0 and t < 300:
            fe.cycle(t)
            t += 1.0
        fe.cycle(t)
        assert fe.stall_hint(t) is None  # branch not executed yet
        rob.mark_done(0, t + 2.0)
        hint = fe.stall_hint(t)
        assert hint == pytest.approx(t + 2.0)  # capped at ROB head completion


class TestICache:
    def test_cold_start_stalls_on_icache(self):
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 4))
        assert fe.cycle(0.0) == 0
        assert fe.last_stall == "icache"
        hint = fe.stall_hint(0.0)
        assert hint is not None and hint > 0.0

    def test_warm_lines_do_not_stall(self):
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 8))
        t = 0.0
        while not fe.trace_exhausted and t < 400:
            fe.cycle(t)
            t += 1.0
        # 8 instructions in one 64B line: exactly one I-miss
        assert fe.hierarchy.l1i.misses == 1


class TestCompletion:
    def test_finished_after_retire(self):
        fe, rob, queues = _frontend(_trace_of([K.INT_ALU] * 3))
        t = 0.0
        while not fe.trace_exhausted and t < 300:
            fe.cycle(t)
            t += 1.0
        assert not fe.finished
        for i in range(3):
            rob.mark_done(i, t)
        fe.cycle(t + 1.0)
        assert fe.finished
