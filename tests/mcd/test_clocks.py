"""Unit tests for per-domain clocks."""

import random

import pytest

from repro.mcd.clocks import DomainClock


class TestBasics:
    def test_period(self):
        assert DomainClock(0.5).period_ns == pytest.approx(2.0)

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ValueError):
            DomainClock(0.0)
        clock = DomainClock(1.0)
        with pytest.raises(ValueError):
            clock.set_frequency(-1.0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            DomainClock(1.0, jitter_sigma_ns=-0.1)

    def test_start_offset(self):
        clock = DomainClock(1.0, start_ns=0.3)
        assert clock.next_edge_ns == pytest.approx(0.3)


class TestAdvance:
    def test_jitter_free_edges_are_periodic(self):
        clock = DomainClock(1.0)
        edges = [clock.advance() for _ in range(5)]
        assert edges == pytest.approx([0.0, 1.0, 2.0, 3.0, 4.0])

    def test_frequency_change_takes_effect_next_edge(self):
        clock = DomainClock(1.0)
        clock.advance()  # edge at 0, next at 1
        clock.set_frequency(0.5)
        assert clock.advance() == pytest.approx(1.0)
        assert clock.next_edge_ns == pytest.approx(3.0)  # period now 2 ns

    def test_jitter_perturbs_but_preserves_order(self):
        clock = DomainClock(1.0, jitter_sigma_ns=0.01, rng=random.Random(7))
        edges = [clock.advance() for _ in range(1000)]
        diffs = [b - a for a, b in zip(edges, edges[1:])]
        assert all(d > 0 for d in diffs)
        mean = sum(diffs) / len(diffs)
        assert mean == pytest.approx(1.0, abs=0.01)
        assert any(abs(d - 1.0) > 1e-4 for d in diffs)

    def test_jitter_clamped_to_fraction_of_period(self):
        clock = DomainClock(1.0, jitter_sigma_ns=10.0, rng=random.Random(3))
        edges = [clock.advance() for _ in range(100)]
        diffs = [b - a for a, b in zip(edges, edges[1:])]
        assert all(0.2 <= d <= 1.8 for d in diffs)


class TestSkipTo:
    def test_skip_preserves_phase(self):
        clock = DomainClock(1.0)
        clock.advance()  # next edge at 1.0
        clock.skip_to(5.4)
        assert clock.next_edge_ns == pytest.approx(6.0)

    def test_skip_to_past_is_noop(self):
        clock = DomainClock(1.0)
        clock.advance()
        clock.skip_to(0.5)
        assert clock.next_edge_ns == pytest.approx(1.0)

    def test_skip_exact_edge(self):
        clock = DomainClock(1.0)
        clock.advance()
        clock.skip_to(3.0)
        assert clock.next_edge_ns == pytest.approx(3.0)


class TestEdgePrediction:
    def test_edge_at_or_after(self):
        clock = DomainClock(0.5)  # period 2
        clock.advance()  # next edge 2.0
        assert clock.edge_at_or_after(0.0) == pytest.approx(2.0)
        assert clock.edge_at_or_after(2.0) == pytest.approx(2.0)
        assert clock.edge_at_or_after(2.1) == pytest.approx(4.0)
        assert clock.edge_at_or_after(7.9) == pytest.approx(8.0)

    def test_prediction_does_not_consume(self):
        clock = DomainClock(1.0)
        clock.edge_at_or_after(10.0)
        assert clock.next_edge_ns == pytest.approx(0.0)
