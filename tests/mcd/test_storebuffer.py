"""Unit tests for the store (retire) buffer."""

import math

import pytest

from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import MachineConfig
from repro.mcd.loadstore import LoadStoreDomain
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.mcd.storebuffer import StoreBuffer
from repro.workloads.instructions import Instruction, InstructionKind as K


class TestStoreBuffer:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)

    def test_accepts_until_full(self):
        buf = StoreBuffer(2)
        assert buf.can_accept(0.0)
        buf.push(0.0, 100.0)
        buf.push(0.0, 100.0)
        assert not buf.can_accept(0.0)

    def test_push_when_full_raises(self):
        buf = StoreBuffer(1)
        buf.push(0.0, 100.0)
        with pytest.raises(RuntimeError):
            buf.push(0.0, 100.0)

    def test_drains_free_capacity(self):
        buf = StoreBuffer(1)
        buf.push(0.0, 50.0)
        assert not buf.can_accept(49.0)
        assert buf.can_accept(50.0)
        assert buf.occupancy(50.0) == 0

    def test_drain_order_monotone(self):
        """Drains initiate in program order; a fast store behind a slow one
        cannot complete first."""
        buf = StoreBuffer(4)
        buf.push(0.0, 100.0)
        buf.push(0.0, 20.0)  # would finish earlier: serialized behind 100
        assert buf.occupancy(50.0) == 2
        assert buf.occupancy(100.0) == 0

    def test_next_drain(self):
        buf = StoreBuffer(4)
        assert math.isinf(buf.next_drain_ns())
        buf.push(0.0, 30.0)
        assert buf.next_drain_ns() == pytest.approx(30.0)

    def test_counters(self):
        buf = StoreBuffer(4)
        buf.push(0.0, 10.0)
        buf.record_full_stall()
        assert buf.total_stores == 1
        assert buf.full_stalls == 1


class TestStoreBufferInDomain:
    def _domain(self, buffer_size):
        config = MachineConfig(jitter_sigma_ns=0.0, store_buffer_size=buffer_size)
        clock = DomainClock(1.0)
        queue = IssueQueue("ls", config.ls_queue_size)
        rob = ReorderBuffer(config.rob_size)
        hierarchy = MemoryHierarchy.from_config(config)
        dom = LoadStoreDomain(clock, queue, rob, hierarchy, config)
        return dom, queue, rob

    def _store(self, index, addr):
        return Instruction(index=index, kind=K.STORE, pc=0x400000 + 4 * index, addr=addr)

    def test_missing_stores_fill_the_buffer(self):
        """Cold stores drain through memory (~95 ns); with a 1-entry buffer
        the second store stalls until the first drain completes."""
        dom, queue, rob = self._domain(buffer_size=1)
        for i in range(2):
            inst = self._store(i, 0x1000_0000 + 4096 * i)
            rob.allocate(inst, 0.0)
            queue.push(inst, 0.0, 0.0)
        assert dom.cycle(1.0) == 1  # second store blocked by full buffer
        assert dom.store_buffer.full_stalls >= 1
        # after the first drain (1 AGU + 14 cycles + 80 ns), it proceeds
        assert dom.cycle(97.0) == 1

    def test_large_buffer_absorbs_bursts(self):
        dom, queue, rob = self._domain(buffer_size=64)
        for i in range(4):
            inst = self._store(i, 0x1000_0000 + 4096 * i)
            rob.allocate(inst, 0.0)
            queue.push(inst, 0.0, 0.0)
        issued = dom.cycle(1.0) + dom.cycle(2.0)
        assert issued == 4  # 2 ports/cycle, never buffer-stalled
        assert dom.store_buffer.full_stalls == 0

    def test_loads_pass_blocked_stores(self):
        dom, queue, rob = self._domain(buffer_size=1)
        s0 = self._store(0, 0x1000_0000)
        s1 = self._store(1, 0x2000_0000)
        load = Instruction(index=2, kind=K.LOAD, pc=0x400008, addr=0x1000_0000)
        for inst in (s0, s1, load):
            rob.allocate(inst, 0.0)
            queue.push(inst, 0.0, 0.0)
        issued = dom.cycle(1.0)
        assert issued == 2  # s0 + the load; s1 waits on the buffer
        assert rob.completion_time(2) is not None
        assert rob.completion_time(1) is None
