"""Tests for the Transmeta-style DVFS extension (paper Section 3)."""

import pytest

from repro.core.config import transmeta_adaptive_config
from repro.harness.experiment import build_controllers, run_experiment
from repro.mcd.domains import DomainId, MachineConfig, transmeta_machine_config


class TestConfig:
    def test_transmeta_machine_defaults(self):
        machine = transmeta_machine_config()
        assert machine.dvfs_style == "transmeta"
        assert machine.stalls_during_transition
        assert machine.step_ghz == pytest.approx(0.05)
        assert machine.relock_idle_ns == pytest.approx(2000.0)

    def test_xscale_machine_never_stalls(self):
        machine = MachineConfig()
        assert not machine.stalls_during_transition
        assert machine.relock_idle_ns == 0.0

    def test_overrides(self):
        machine = transmeta_machine_config(relock_idle_ns=500.0)
        assert machine.relock_idle_ns == 500.0

    def test_rejects_unknown_style(self):
        with pytest.raises(ValueError, match="dvfs_style"):
            MachineConfig(dvfs_style="intel")

    def test_rejects_negative_relock(self):
        with pytest.raises(ValueError):
            MachineConfig(relock_idle_ns=-1.0)

    def test_step_switching_time_includes_relock(self):
        machine = transmeta_machine_config()
        slew_part = machine.step_ghz * 1e3 * machine.slew_ns_per_mhz
        assert machine.step_switching_time_ns == pytest.approx(
            slew_part + machine.relock_idle_ns
        )

    def test_transmeta_controller_tuning(self):
        config = transmeta_adaptive_config(DomainId.FP)
        assert config.t_m0 > 10 * 50.0  # much longer than the XScale default
        assert config.dw_level >= 2.0

    def test_harness_picks_transmeta_tuning(self):
        controllers = build_controllers("adaptive", machine=transmeta_machine_config())
        for ctrl in controllers.values():
            assert ctrl.config.t_m0 == pytest.approx(1000.0)

    def test_harness_explicit_override_wins(self):
        controllers = build_controllers(
            "adaptive",
            machine=transmeta_machine_config(),
            adaptive_overrides={"t_m0": 123.0},
        )
        for ctrl in controllers.values():
            assert ctrl.config.t_m0 == 123.0


class TestBehaviour:
    @pytest.fixture(scope="class")
    def runs(self):
        window = 30_000
        xscale = run_experiment(
            "gsm-decode", scheme="adaptive", machine=MachineConfig(),
            max_instructions=window, record_history=False,
        )
        transmeta = run_experiment(
            "gsm-decode", scheme="adaptive", machine=transmeta_machine_config(),
            max_instructions=window, record_history=False,
        )
        return xscale, transmeta

    def test_transmeta_acts_far_less_often(self, runs):
        xscale, transmeta = runs
        assert sum(transmeta.transitions.values()) * 5 <= sum(
            xscale.transitions.values()
        )

    def test_transmeta_still_completes_and_saves_something(self, runs):
        _, transmeta = runs
        assert transmeta.instructions > 25_000
        baseline = run_experiment(
            "gsm-decode", scheme="full-speed", machine=transmeta_machine_config(),
            max_instructions=30_000, record_history=False,
        )
        assert transmeta.energy.total < baseline.energy.total

    def test_transmeta_perf_cost_bounded(self, runs):
        _, transmeta = runs
        baseline = run_experiment(
            "gsm-decode", scheme="full-speed", machine=transmeta_machine_config(),
            max_instructions=30_000, record_history=False,
        )
        assert transmeta.time_ns < baseline.time_ns * 1.25
