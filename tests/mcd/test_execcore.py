"""Unit tests for the INT/FP execution domains."""

import pytest

from repro.mcd.clocks import DomainClock
from repro.mcd.domains import DomainId, MachineConfig
from repro.mcd.execcore import ExecutionDomain, FunctionalUnitPool, next_ready_hint
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.workloads.instructions import Instruction, InstructionKind as K


def _inst(index, kind=K.INT_ALU, src1=None, src2=None):
    return Instruction(index=index, kind=kind, pc=0x400000 + 4 * index, src1=src1, src2=src2)


def _domain(domain_id=DomainId.INT, freq=1.0):
    config = MachineConfig(jitter_sigma_ns=0.0)
    clock = DomainClock(freq)
    queue = IssueQueue(domain_id.value, config.queue_capacity(domain_id))
    rob = ReorderBuffer(config.rob_size)
    return ExecutionDomain(domain_id, clock, queue, rob, config), queue, rob


class TestFunctionalUnitPool:
    def test_acquire_until_exhausted(self):
        pool = FunctionalUnitPool("alu", 2)
        assert pool.acquire(0.0, 1.0)
        assert pool.acquire(0.0, 1.0)
        assert not pool.acquire(0.0, 1.0)

    def test_frees_after_busy_time(self):
        pool = FunctionalUnitPool("alu", 1)
        pool.acquire(0.0, 2.0)
        assert not pool.acquire(1.9, 1.0)
        assert pool.acquire(2.0, 1.0)

    def test_rejects_empty_pool(self):
        with pytest.raises(ValueError):
            FunctionalUnitPool("none", 0)


class TestIssue:
    def test_issues_ready_visible_entries(self):
        dom, queue, rob = _domain()
        for i in range(3):
            rob.allocate(_inst(i), 0.0)
            queue.push(_inst(i), visible_ns=0.0, now_ns=0.0)
        issued = dom.cycle(1.0)
        assert issued == 3
        assert queue.is_empty
        for i in range(3):
            assert rob.completion_time(i) == pytest.approx(2.0)  # 1-cycle ALU

    def test_issue_width_respected(self):
        dom, queue, rob = _domain()
        for i in range(6):
            rob.allocate(_inst(i), 0.0)
            queue.push(_inst(i), 0.0, 0.0)
        assert dom.cycle(1.0) == 4  # INT issue width
        assert queue.occupancy == 2

    def test_invisible_entries_not_issued(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(0), 0.0)
        queue.push(_inst(0), visible_ns=10.0, now_ns=0.0)
        assert dom.cycle(1.0) == 0

    def test_dependence_blocks_issue(self):
        dom, queue, rob = _domain()
        producer = _inst(0, K.INT_DIV)
        consumer = _inst(1, src1=0)
        rob.allocate(producer, 0.0)
        rob.allocate(consumer, 0.0)
        queue.push(producer, 0.0, 0.0)
        queue.push(consumer, 0.0, 0.0)
        assert dom.cycle(1.0) == 1  # only the divide issues
        done = rob.completion_time(0)
        assert done == pytest.approx(1.0 + 12.0)
        # consumer still blocked before the divide completes
        assert dom.cycle(done - 1.0) == 0
        assert dom.cycle(done) == 1

    def test_out_of_order_issue_past_blocked_elder(self):
        dom, queue, rob = _domain()
        blocked = _inst(1, src1=0)  # producer never even dispatched
        younger = _inst(2)
        rob.allocate(blocked, 0.0)
        rob.allocate(younger, 0.0)
        queue.push(blocked, 0.0, 0.0)
        queue.push(younger, 0.0, 0.0)
        assert dom.cycle(1.0) == 1
        assert rob.completion_time(2) is not None
        assert rob.completion_time(1) is None

    def test_divider_is_not_pipelined(self):
        dom, queue, rob = _domain()
        for i in range(2):
            rob.allocate(_inst(i, K.INT_DIV), 0.0)
            queue.push(_inst(i, K.INT_DIV), 0.0, 0.0)
        assert dom.cycle(1.0) == 1  # single mult/div unit, busy 12 cycles
        assert dom.cycle(2.0) == 0
        assert dom.cycle(14.0) == 1

    def test_alus_are_pipelined(self):
        dom, queue, rob = _domain()
        for i in range(8):
            rob.allocate(_inst(i), 0.0)
            queue.push(_inst(i), 0.0, 0.0)
        assert dom.cycle(1.0) == 4
        assert dom.cycle(2.0) == 4  # ALUs accept new work every cycle

    def test_latency_scales_with_period(self):
        dom, queue, rob = _domain(freq=0.25)  # period 4 ns
        rob.allocate(_inst(0, K.INT_MUL), 0.0)
        queue.push(_inst(0, K.INT_MUL), 0.0, 0.0)
        dom.cycle(4.0)
        assert rob.completion_time(0) == pytest.approx(4.0 + 3 * 4.0)

    def test_fp_domain_rejects_construction_for_ls(self):
        config = MachineConfig()
        with pytest.raises(ValueError):
            ExecutionDomain(
                DomainId.LS,
                DomainClock(1.0),
                IssueQueue("ls", 16),
                ReorderBuffer(8),
                config,
            )


class TestIdleAndHints:
    def test_idle_when_empty(self):
        dom, queue, rob = _domain()
        assert dom.is_idle(0.0)

    def test_not_idle_with_queued_work(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(0), 0.0)
        queue.push(_inst(0), 5.0, 0.0)
        assert not dom.is_idle(0.0)

    def test_not_idle_with_busy_fu(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(0, K.INT_DIV), 0.0)
        queue.push(_inst(0, K.INT_DIV), 0.0, 0.0)
        dom.cycle(1.0)
        assert not dom.is_idle(2.0)

    def test_hint_for_invisible_entry(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(0), 0.0)
        queue.push(_inst(0), visible_ns=9.0, now_ns=0.0)
        assert dom.stall_hint(1.0) == pytest.approx(9.0)

    def test_hint_for_in_flight_producer(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(0, K.INT_DIV), 0.0)
        rob.allocate(_inst(1, src1=0), 0.0)
        queue.push(_inst(0, K.INT_DIV), 0.0, 0.0)
        queue.push(_inst(1, src1=0), 0.0, 0.0)
        dom.cycle(1.0)
        hint = dom.stall_hint(2.0)
        assert hint == pytest.approx(13.0)  # divide completes at 1 + 12

    def test_hint_unknown_for_unissued_producer(self):
        dom, queue, rob = _domain()
        rob.allocate(_inst(5, src1=4), 0.0)  # producer 4 lives elsewhere
        queue.push(_inst(5, src1=4), 0.0, 0.0)
        assert dom.stall_hint(1.0) is None

    def test_hint_helper_function_empty_queue(self):
        dom, queue, rob = _domain()
        assert next_ready_hint(queue, rob, 0.0) is None
