"""Integration-level tests of the event-driven GALS processor."""

import pytest

from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.processor import MCDProcessor
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import Instruction, InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def _simple_trace(n=200, kind=K.INT_ALU):
    return [
        Instruction(
            index=i,
            kind=kind,
            pc=0x400000 + 4 * (i % 64),
            addr=0x1000_0000 + 8 * i if kind.is_mem else None,
        )
        for i in range(n)
    ]


def _mixed_spec(length=4000):
    return BenchmarkSpec(
        name="proc-test",
        suite="mediabench",
        phases=(
            PhaseSpec(
                name="mixed",
                length=length,
                mix={K.INT_ALU: 0.4, K.FP_ADD: 0.2, K.LOAD: 0.2, K.STORE: 0.05, K.BRANCH: 0.15},
            ),
        ),
    )


class TestBasicRun:
    def test_all_instructions_retire(self, quiet_machine):
        trace = _simple_trace(300)
        result = MCDProcessor(trace, config=quiet_machine).run()
        assert result.instructions == 300

    def test_time_positive_and_bounded(self, quiet_machine):
        trace = _simple_trace(300)
        result = MCDProcessor(trace, config=quiet_machine).run()
        # 300 int ops, 4-wide: at least 75 ns; sane upper bound
        assert 75.0 <= result.time_ns <= 5000.0

    def test_energy_positive_in_all_domains(self, quiet_machine):
        result = MCDProcessor(_simple_trace(300), config=quiet_machine).run()
        for domain in DomainId:
            assert result.energy.by_domain[domain] > 0.0

    def test_empty_trace_rejected(self, quiet_machine):
        with pytest.raises(ValueError):
            MCDProcessor([], config=quiet_machine)

    def test_rejects_controller_on_front_end(self, quiet_machine):
        controller = AdaptiveDvfsController(DomainId.INT, machine=quiet_machine)
        controller.domain = DomainId.FRONT_END
        with pytest.raises(ValueError):
            MCDProcessor(
                _simple_trace(10),
                config=quiet_machine,
                controllers={DomainId.FRONT_END: controller},
            )

    def test_max_time_guard(self, quiet_machine):
        trace = _simple_trace(5000)
        with pytest.raises(RuntimeError, match="exceeded"):
            MCDProcessor(trace, config=quiet_machine).run(max_time_ns=10.0)


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        trace = generate_trace(_mixed_spec())
        a = MCDProcessor(trace, seed=42).run()
        b = MCDProcessor(trace, seed=42).run()
        assert a.time_ns == b.time_ns
        assert a.energy.total == b.energy.total

    def test_different_jitter_seed_changes_timing_slightly(self):
        trace = generate_trace(_mixed_spec())
        a = MCDProcessor(trace, seed=1).run()
        b = MCDProcessor(trace, seed=2).run()
        assert a.time_ns != b.time_ns
        assert a.time_ns == pytest.approx(b.time_ns, rel=0.05)


class TestFrequencyControl:
    def test_no_controller_stays_at_fmax(self, quiet_machine):
        trace = generate_trace(_mixed_spec())
        result = MCDProcessor(trace, config=quiet_machine).run()
        for domain in CONTROLLED_DOMAINS:
            assert result.mean_frequency_ghz[domain] == pytest.approx(1.0)
            assert result.transitions[domain] == 0

    def test_adaptive_controller_scales_idle_fp_down(self, quiet_machine):
        """An all-integer workload leaves the FP queue empty; the adaptive
        controller must walk the FP domain's frequency down."""
        spec = BenchmarkSpec(
            name="int-only",
            suite="spec2000int",
            phases=(
                PhaseSpec(
                    name="int",
                    length=20000,
                    mix={K.INT_ALU: 0.7, K.LOAD: 0.15, K.BRANCH: 0.15},
                ),
            ),
        )
        trace = generate_trace(spec)
        controllers = {
            d: AdaptiveDvfsController(d, machine=quiet_machine)
            for d in CONTROLLED_DOMAINS
        }
        result = MCDProcessor(trace, config=quiet_machine, controllers=controllers).run()
        assert result.mean_frequency_ghz[DomainId.FP] < 0.9
        assert result.transitions[DomainId.FP] > 10
        # and the history's final FP frequency is well below max
        assert result.history.frequency_ghz[DomainId.FP][-1] < 0.8

    def test_dvfs_saves_energy_on_idle_domain(self, quiet_machine):
        spec = BenchmarkSpec(
            name="int-only2",
            suite="spec2000int",
            phases=(
                PhaseSpec(
                    name="int",
                    length=20000,
                    mix={K.INT_ALU: 0.7, K.LOAD: 0.15, K.BRANCH: 0.15},
                ),
            ),
        )
        trace = generate_trace(spec)
        base = MCDProcessor(trace, config=quiet_machine).run()
        controllers = {
            DomainId.FP: AdaptiveDvfsController(DomainId.FP, machine=quiet_machine)
        }
        scaled = MCDProcessor(trace, config=quiet_machine, controllers=controllers).run()
        assert scaled.energy.by_domain[DomainId.FP] < base.energy.by_domain[DomainId.FP]
        # scaling only the idle FP domain must not slow the program much
        assert scaled.time_ns <= base.time_ns * 1.02


class TestHistory:
    def test_history_recorded_at_stride(self, quiet_machine):
        trace = _simple_trace(2000)
        proc = MCDProcessor(trace, config=quiet_machine, history_stride=1)
        result = proc.run()
        h = result.history
        n = len(h.time_ns)
        assert n > 10
        assert len(h.retired) == n
        for domain in CONTROLLED_DOMAINS:
            assert len(h.occupancy[domain]) == n
            assert len(h.frequency_ghz[domain]) == n
        # sampling period is 4 ns
        assert h.time_ns[1] - h.time_ns[0] == pytest.approx(4.0)

    def test_history_disabled(self, quiet_machine):
        result = MCDProcessor(
            _simple_trace(500), config=quiet_machine, record_history=False
        ).run()
        assert result.history.time_ns == []

    def test_retired_monotone(self, quiet_machine):
        result = MCDProcessor(_simple_trace(2000), config=quiet_machine).run()
        retired = result.history.retired
        assert all(a <= b for a, b in zip(retired, retired[1:]))


class TestQueueInvariants:
    def test_occupancy_never_exceeds_capacity(self, quiet_machine):
        trace = generate_trace(_mixed_spec(6000))
        proc = MCDProcessor(trace, config=quiet_machine, history_stride=1)
        result = proc.run()
        for domain in CONTROLLED_DOMAINS:
            cap = quiet_machine.queue_capacity(domain)
            assert max(result.history.occupancy[domain], default=0) <= cap
            assert min(result.history.occupancy[domain], default=0) >= 0

    def test_metrics_property(self, quiet_machine):
        result = MCDProcessor(_simple_trace(300), config=quiet_machine).run()
        m = result.metrics
        assert m.time_ns == result.time_ns
        # metrics use chip energy (main memory is an external domain)
        assert m.energy == result.energy.chip_total
        assert m.edp == pytest.approx(m.time_ns * m.energy)
