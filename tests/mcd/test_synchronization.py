"""Unit tests for the inter-domain synchronization interface."""

import pytest

from repro.mcd.clocks import DomainClock
from repro.mcd.synchronization import SynchronizationInterface


class TestArrival:
    def test_data_latched_at_next_safe_edge(self):
        dst = DomainClock(1.0)  # edges at 0, 1, 2, ...
        sync = SynchronizationInterface(sync_window_ns=0.3)
        # ready at 0.5: next edge 1.0 is 0.5 away (> window) -> latched at 1.0
        assert sync.arrival_time(0.5, dst) == pytest.approx(1.0)

    def test_edge_inside_window_defers_one_cycle(self):
        dst = DomainClock(1.0)
        sync = SynchronizationInterface(sync_window_ns=0.3)
        # ready at 0.9: edge at 1.0 is only 0.1 away -> defer to 2.0
        assert sync.arrival_time(0.9, dst) == pytest.approx(2.0)

    def test_exactly_at_window_boundary_is_safe(self):
        dst = DomainClock(1.0)
        sync = SynchronizationInterface(sync_window_ns=0.3)
        assert sync.arrival_time(0.7, dst) == pytest.approx(1.0)

    def test_zero_window_never_defers(self):
        dst = DomainClock(1.0)
        sync = SynchronizationInterface(sync_window_ns=0.0)
        for t in (0.1, 0.5, 0.999):
            assert sync.arrival_time(t, dst) == pytest.approx(1.0)
        assert sync.deferred == 0

    def test_slower_destination_pays_longer(self):
        fast, slow = DomainClock(1.0), DomainClock(0.25)
        sync = SynchronizationInterface(0.3)
        assert sync.arrival_time(0.5, slow) >= sync.arrival_time(0.5, fast)

    def test_rejects_negative_window(self):
        with pytest.raises(ValueError):
            SynchronizationInterface(-0.1)


class TestStatistics:
    def test_counts(self):
        dst = DomainClock(1.0)
        sync = SynchronizationInterface(0.3)
        sync.arrival_time(0.5, dst)   # safe
        sync.arrival_time(0.9, dst)   # deferred
        assert sync.transfers == 2
        assert sync.deferred == 1
        assert sync.deferral_rate == pytest.approx(0.5)

    def test_deferral_rate_empty(self):
        assert SynchronizationInterface(0.3).deferral_rate == 0.0

    def test_deferral_rate_matches_window_fraction(self):
        """For uniformly random ready times, P(defer) ~ window / period."""
        dst = DomainClock(1.0)
        sync = SynchronizationInterface(0.3)
        n = 2000
        for i in range(n):
            sync.arrival_time(i * 0.617339, dst)
        assert sync.deferral_rate == pytest.approx(0.3, abs=0.05)
