"""Unit tests for the load/store domain."""

import pytest

from repro.mcd.cache import MemoryHierarchy
from repro.mcd.clocks import DomainClock
from repro.mcd.domains import MachineConfig
from repro.mcd.loadstore import LoadStoreDomain
from repro.mcd.queues import IssueQueue
from repro.mcd.rob import ReorderBuffer
from repro.workloads.instructions import Instruction, InstructionKind as K


def _mem(index, kind=K.LOAD, addr=0x1000_0000, src1=None):
    return Instruction(index=index, kind=kind, pc=0x400000 + 4 * index, addr=addr, src1=src1)


def _domain(freq=1.0):
    config = MachineConfig(jitter_sigma_ns=0.0)
    clock = DomainClock(freq)
    queue = IssueQueue("ls", config.ls_queue_size)
    rob = ReorderBuffer(config.rob_size)
    hierarchy = MemoryHierarchy.from_config(config)
    return LoadStoreDomain(clock, queue, rob, hierarchy, config), queue, rob, hierarchy


class TestLoadLatency:
    def test_cold_load_pays_memory(self):
        dom, queue, rob, h = _domain()
        rob.allocate(_mem(0), 0.0)
        queue.push(_mem(0), 0.0, 0.0)
        assert dom.cycle(1.0) == 1
        # 1 AGU + 2 L1 + 12 L2 cycles + 80 ns memory
        assert rob.completion_time(0) == pytest.approx(1.0 + 15.0 + 80.0)

    def test_warm_load_is_l1_hit(self):
        dom, queue, rob, h = _domain()
        h.access_data(0x1000_0000)  # warm the line
        rob.allocate(_mem(0), 0.0)
        queue.push(_mem(0), 0.0, 0.0)
        dom.cycle(1.0)
        assert rob.completion_time(0) == pytest.approx(1.0 + 3.0)  # AGU + 2 L1

    def test_cache_cycles_scale_with_ls_frequency(self):
        dom, queue, rob, h = _domain(freq=0.5)  # 2 ns period
        h.access_data(0x1000_0000)
        rob.allocate(_mem(0), 0.0)
        queue.push(_mem(0), 0.0, 0.0)
        dom.cycle(2.0)
        assert rob.completion_time(0) == pytest.approx(2.0 + 3 * 2.0)

    def test_memory_time_does_not_scale_with_frequency(self):
        """The frequency-independent part of the mu-f model."""
        results = {}
        for freq in (1.0, 0.25):
            dom, queue, rob, h = _domain(freq=freq)
            rob.allocate(_mem(0), 0.0)
            queue.push(_mem(0), 0.0, 0.0)
            dom.cycle(1.0 / freq)
            results[freq] = rob.completion_time(0) - 1.0 / freq
        fixed_part = 80.0
        assert results[1.0] - 15.0 == pytest.approx(fixed_part)
        assert results[0.25] - 15.0 * 4.0 == pytest.approx(fixed_part)


class TestStores:
    def test_store_completes_after_l1_write(self):
        dom, queue, rob, h = _domain()
        rob.allocate(_mem(0, K.STORE), 0.0)
        queue.push(_mem(0, K.STORE), 0.0, 0.0)
        dom.cycle(1.0)
        # AGU + L1 write; the write buffer hides the miss
        assert rob.completion_time(0) == pytest.approx(1.0 + 3.0)

    def test_store_warms_cache_for_later_load(self):
        dom, queue, rob, h = _domain()
        rob.allocate(_mem(0, K.STORE), 0.0)
        queue.push(_mem(0, K.STORE), 0.0, 0.0)
        dom.cycle(1.0)
        rob.allocate(_mem(1, K.LOAD), 0.0)
        queue.push(_mem(1, K.LOAD), 0.0, 0.0)
        dom.cycle(2.0)
        assert rob.completion_time(1) == pytest.approx(2.0 + 3.0)

    def test_counters(self):
        dom, queue, rob, h = _domain()
        rob.allocate(_mem(0, K.STORE), 0.0)
        queue.push(_mem(0, K.STORE), 0.0, 0.0)
        rob.allocate(_mem(1, K.LOAD, addr=0x2000_0000), 0.0)
        queue.push(_mem(1, K.LOAD, addr=0x2000_0000), 0.0, 0.0)
        dom.cycle(1.0)
        assert dom.stores == 1 and dom.loads == 1


class TestPorts:
    def test_two_ports_per_cycle(self):
        dom, queue, rob, h = _domain()
        for i in range(4):
            rob.allocate(_mem(i, addr=0x1000_0000 + 64 * i), 0.0)
            queue.push(_mem(i, addr=0x1000_0000 + 64 * i), 0.0, 0.0)
        assert dom.cycle(1.0) == 2
        assert dom.cycle(2.0) == 2

    def test_address_dependence_blocks(self):
        dom, queue, rob, h = _domain()
        load = _mem(1, src1=0)  # address depends on un-issued inst 0
        rob.allocate(load, 0.0)
        queue.push(load, 0.0, 0.0)
        assert dom.cycle(1.0) == 0
        rob.mark_done(0, 1.5)
        assert dom.cycle(2.0) == 1


class TestIdleHints:
    def test_idle_when_empty(self):
        dom, queue, rob, h = _domain()
        assert dom.is_idle(0.0)

    def test_stall_hint_visible_future(self):
        dom, queue, rob, h = _domain()
        rob.allocate(_mem(0), 0.0)
        queue.push(_mem(0), visible_ns=42.0, now_ns=0.0)
        assert dom.stall_hint(1.0) == pytest.approx(42.0)
