"""Unit tests for the cache hierarchy."""

import pytest

from repro.mcd.cache import AccessResult, Cache, MemoryHierarchy
from repro.mcd.domains import MachineConfig


class TestCacheGeometry:
    def test_set_count(self):
        cache = Cache("c", size_bytes=64 * 1024, assoc=2, line_size=64)
        assert cache.n_sets == 512

    def test_direct_mapped(self):
        cache = Cache("c", size_bytes=1024, assoc=1, line_size=64)
        assert cache.n_sets == 16

    def test_rejects_inconsistent_geometry(self):
        with pytest.raises(ValueError):
            Cache("c", size_bytes=1000, assoc=2, line_size=64)
        with pytest.raises(ValueError):
            Cache("c", size_bytes=0, assoc=1, line_size=64)


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache("c", 1024, 2, 64)
        assert not cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.access(0x103F)  # same 64B line

    def test_different_lines_miss_separately(self):
        cache = Cache("c", 1024, 2, 64)
        cache.access(0x0)
        assert not cache.access(0x40)

    def test_lru_eviction(self):
        # 2-way, line 64, 2 sets => set 0 holds lines 0, 2, 4...
        cache = Cache("c", 256, 2, 64)
        a, b, c = 0x000, 0x100, 0x200  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.probe(a)
        assert not cache.probe(b)
        assert cache.probe(c)

    def test_probe_does_not_count(self):
        cache = Cache("c", 1024, 2, 64)
        cache.probe(0x0)
        assert cache.accesses == 0

    def test_miss_rate(self):
        cache = Cache("c", 1024, 2, 64)
        cache.access(0x0)
        cache.access(0x0)
        assert cache.miss_rate == pytest.approx(0.5)

    def test_working_set_larger_than_cache_thrashes(self):
        cache = Cache("c", 1024, 1, 64)
        # 4 KB of lines round-robin: pure capacity misses
        for _ in range(4):
            for line in range(64):
                cache.access(line * 64)
        assert cache.miss_rate > 0.9

    def test_working_set_within_cache_stays_resident(self):
        cache = Cache("c", 4096, 2, 64)
        for _ in range(4):
            for line in range(16):
                cache.access(line * 64)
        assert cache.hits >= 3 * 16


class TestHierarchy:
    def _hierarchy(self):
        return MemoryHierarchy.from_config(MachineConfig())

    def test_from_config_dimensions(self):
        h = self._hierarchy()
        assert h.l1d.size_bytes == 64 * 1024 and h.l1d.assoc == 2
        assert h.l2.size_bytes == 1024 * 1024 and h.l2.assoc == 1

    def test_l1_hit_path(self):
        h = self._hierarchy()
        h.access_data(0x1000)
        result = h.access_data(0x1000)
        assert result.l1_hit
        cycles, fixed = h.latency_split(result)
        assert cycles == 2 and fixed == 0.0

    def test_l2_hit_path(self):
        h = self._hierarchy()
        result = h.access_data(0x1000)  # cold: misses both, fills both
        assert not result.l1_hit and not result.l2_hit
        # evict from L1 by conflict, keep in L2: touch enough same-set lines
        base = 0x1000
        for i in range(1, 3):
            h.access_data(base + i * 64 * 1024)  # same L1 set (64KB 2-way)
        result = h.access_data(base)
        assert not result.l1_hit
        assert result.l2_hit
        cycles, fixed = h.latency_split(result)
        assert cycles == 2 + 12 and fixed == 0.0

    def test_memory_path(self):
        h = self._hierarchy()
        result = h.access_data(0x5000)
        assert result.went_to_memory
        cycles, fixed = h.latency_split(result)
        assert cycles == 14 and fixed == pytest.approx(80.0)
        assert h.memory_accesses == 1

    def test_inst_and_data_sides_are_separate(self):
        h = self._hierarchy()
        h.access_data(0x2000)
        result = h.access_inst(0x2000)
        assert not result.l1_hit  # L1I cold even though L1D warm
        assert result.l2_hit      # unified L2 warm
