"""Unit tests for the combined issue/interface queues."""

import pytest

from repro.mcd.queues import IssueQueue, QueueFullError
from repro.workloads.instructions import Instruction, InstructionKind as K


def _inst(index):
    return Instruction(index=index, kind=K.INT_ALU, pc=0x400000 + 4 * index)


class TestCapacity:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            IssueQueue("q", 0)

    def test_fills_to_capacity(self):
        q = IssueQueue("q", 3)
        for i in range(3):
            q.push(_inst(i), visible_ns=0.0, now_ns=0.0)
        assert q.is_full
        assert q.occupancy == 3

    def test_push_when_full_raises(self):
        q = IssueQueue("q", 1)
        q.push(_inst(0), 0.0, 0.0)
        with pytest.raises(QueueFullError):
            q.push(_inst(1), 0.0, 0.0)

    def test_len_matches_occupancy(self):
        q = IssueQueue("q", 4)
        q.push(_inst(0), 0.0, 0.0)
        assert len(q) == q.occupancy == 1


class TestVisibility:
    def test_entry_invisible_before_sync_arrival(self):
        q = IssueQueue("q", 4)
        q.push(_inst(0), visible_ns=5.0, now_ns=1.0)
        assert q.visible_entries(4.9) == []
        assert len(q.visible_entries(5.0)) == 1

    def test_occupancy_counts_invisible_entries(self):
        """The controller samples *written* occupancy, not visibility."""
        q = IssueQueue("q", 4)
        q.push(_inst(0), visible_ns=100.0, now_ns=0.0)
        assert q.occupancy == 1

    def test_visible_entries_in_program_order(self):
        q = IssueQueue("q", 4)
        for i in range(3):
            q.push(_inst(i), visible_ns=float(i), now_ns=0.0)
        visible = q.visible_entries(10.0)
        assert [e.instruction.index for e in visible] == [0, 1, 2]

    def test_earliest_visibility(self):
        q = IssueQueue("q", 4)
        assert q.earliest_visibility() is None
        q.push(_inst(0), visible_ns=7.0, now_ns=0.0)
        q.push(_inst(1), visible_ns=3.0, now_ns=0.0)
        assert q.earliest_visibility() == pytest.approx(3.0)


class TestRemoval:
    def test_remove_specific_entry(self):
        q = IssueQueue("q", 4)
        e0 = q.push(_inst(0), 0.0, 0.0)
        e1 = q.push(_inst(1), 0.0, 0.0)
        q.remove(e0)
        assert q.occupancy == 1
        assert q.visible_entries(1.0)[0] is e1

    def test_slot_freed_callback_fires_only_when_full(self):
        events = []
        q = IssueQueue("q", 2)
        q.on_slot_freed = events.append
        e0 = q.push(_inst(0), 0.0, 0.0)
        q.remove(e0)  # was not full
        assert events == []
        e1 = q.push(_inst(1), 0.0, 0.0)
        e2 = q.push(_inst(2), 0.0, 0.0)
        q.remove(e1)  # was full
        assert events == [q]
        q.remove(e2)
        assert events == [q]

    def test_clear(self):
        q = IssueQueue("q", 4)
        q.push(_inst(0), 0.0, 0.0)
        q.clear()
        assert q.is_empty
