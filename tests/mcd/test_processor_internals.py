"""Edge-case tests of the event loop's sleep/wake and backpressure machinery.

The fast-forwarding optimizations (domain sleep with wake-on-dispatch, timer
sleeps, front-end backpressure sleep) must never change *what* executes --
only skip provably idle cycles.  These tests pin the behaviours the
optimizations rely on.
"""

import pytest

from repro.mcd.domains import CONTROLLED_DOMAINS, DomainId, MachineConfig
from repro.mcd.processor import MCDProcessor
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import Instruction, InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def _trace(kinds):
    out = []
    for i, (kind, deps) in enumerate(kinds):
        addr = 0x1000_0000 + 8 * i if kind.is_mem else None
        out.append(
            Instruction(
                index=i, kind=kind, pc=0x400000 + 4 * i,
                src1=deps[0] if deps else None,
                src2=deps[1] if len(deps) > 1 else None,
                addr=addr,
            )
        )
    return out


def _quiet():
    return MachineConfig(jitter_sigma_ns=0.0)


class TestSleepWake:
    def test_fp_domain_sleeps_through_int_run(self):
        """An all-INT trace must leave the FP domain fully gated: no FP
        cycles execute (its issued counter stays zero) and the run is not
        slowed by the idle domain."""
        trace = _trace([(K.INT_ALU, [])] * 200)
        proc = MCDProcessor(trace, config=_quiet())
        result = proc.run()
        assert result.issued_by_domain[DomainId.FP] == 0
        assert result.instructions == 200

    def test_woken_domain_executes_late_arrivals(self):
        """FP work arriving long after the FP domain went to sleep must
        still execute (wake-on-dispatch)."""
        kinds = [(K.INT_ALU, [])] * 150 + [(K.FP_ADD, [])] * 10
        trace = _trace(kinds)
        result = MCDProcessor(trace, config=_quiet()).run()
        assert result.issued_by_domain[DomainId.FP] == 10
        assert result.instructions == 160

    def test_dependent_chain_across_domains(self):
        """INT -> LS -> FP dependence chain: each consumer lives in a
        different domain and must observe its producer's completion even
        when its domain slept in between."""
        trace = [
            Instruction(index=0, kind=K.INT_ALU, pc=0x400000),
            Instruction(index=1, kind=K.LOAD, pc=0x400004, addr=0x1000_0000, src1=0),
            Instruction(index=2, kind=K.FP_ADD, pc=0x400008, src1=1),
        ]
        result = MCDProcessor(trace, config=_quiet()).run()
        assert result.instructions == 3
        # the FP op waits out the load's full memory latency
        assert result.time_ns > 80.0

    def test_results_identical_regardless_of_history(self):
        """Recording history must not perturb simulation outcomes."""
        spec = BenchmarkSpec(
            name="hist-test",
            suite="mediabench",
            phases=(
                PhaseSpec(
                    name="mix",
                    length=3000,
                    mix={K.INT_ALU: 0.5, K.FP_ADD: 0.2, K.LOAD: 0.2, K.BRANCH: 0.1},
                ),
            ),
        )
        trace = generate_trace(spec)
        with_history = MCDProcessor(trace, seed=7, record_history=True).run()
        without = MCDProcessor(trace, seed=7, record_history=False).run()
        assert with_history.time_ns == without.time_ns
        assert with_history.energy.total == pytest.approx(without.energy.total)


class TestBackpressure:
    def test_rob_full_backpressure_resolves(self):
        """A tiny ROB forces repeated rob-full sleeps; everything still
        retires."""
        config = MachineConfig(jitter_sigma_ns=0.0, rob_size=4)
        trace = _trace([(K.LOAD, [])] * 60)
        result = MCDProcessor(trace, config=config).run()
        assert result.instructions == 60

    def test_queue_full_backpressure_resolves(self):
        config = MachineConfig(jitter_sigma_ns=0.0, int_queue_size=2)
        # serial dependence chain keeps the tiny INT queue clogged
        trace = _trace([(K.INT_MUL, [i - 1] if i else []) for i in range(50)])
        result = MCDProcessor(trace, config=config).run()
        assert result.instructions == 50

    def test_store_buffer_pressure_resolves(self):
        config = MachineConfig(jitter_sigma_ns=0.0, store_buffer_size=1)
        trace = _trace([(K.STORE, [])] * 40)
        result = MCDProcessor(trace, config=config).run()
        assert result.instructions == 40


class TestInitialFrequencies:
    def test_pinned_domain_starts_and_stays_at_pin(self):
        trace = _trace([(K.INT_ALU, [])] * 400)
        proc = MCDProcessor(
            trace,
            config=_quiet(),
            initial_frequencies={DomainId.INT: 0.5},
        )
        result = proc.run()
        assert result.mean_frequency_ghz[DomainId.INT] == pytest.approx(0.5)
        assert result.mean_frequency_ghz[DomainId.FP] == pytest.approx(1.0)

    def test_pin_slows_execution(self):
        trace = _trace([(K.INT_ALU, [])] * 400)
        fast = MCDProcessor(trace, config=_quiet()).run()
        slow = MCDProcessor(
            trace, config=_quiet(), initial_frequencies={DomainId.INT: 0.25}
        ).run()
        assert slow.time_ns > fast.time_ns

    def test_pin_clamped_to_envelope(self):
        trace = _trace([(K.INT_ALU, [])] * 50)
        proc = MCDProcessor(
            trace, config=_quiet(), initial_frequencies={DomainId.INT: 5.0}
        )
        result = proc.run()
        assert result.mean_frequency_ghz[DomainId.INT] == pytest.approx(1.0)


class TestTransmetaPause:
    def test_paused_domain_does_no_work_during_relock(self):
        """Drive a Transmeta machine with an adaptive controller on an
        FP-idle trace: every FP transition must be accompanied by a pause
        (the run still completes and retires everything)."""
        from repro.core.config import transmeta_adaptive_config
        from repro.core.controller import AdaptiveDvfsController
        from repro.mcd.domains import transmeta_machine_config

        machine = transmeta_machine_config(jitter_sigma_ns=0.0)
        controllers = {
            DomainId.FP: AdaptiveDvfsController(
                DomainId.FP, transmeta_adaptive_config(DomainId.FP), machine
            )
        }
        kinds = [(K.INT_ALU, [])] * 4000 + [(K.FP_ADD, [])] * 200
        trace = _trace(kinds)
        result = MCDProcessor(trace, config=machine, controllers=controllers).run()
        assert result.instructions == len(trace)
        assert result.transitions[DomainId.FP] >= 1


class TestResultConsistency:
    def test_issued_by_domain_sums_to_retired(self):
        spec = BenchmarkSpec(
            name="sum-test",
            suite="mediabench",
            phases=(
                PhaseSpec(
                    name="mix",
                    length=4000,
                    mix={K.INT_ALU: 0.45, K.FP_ADD: 0.2, K.LOAD: 0.2,
                         K.STORE: 0.05, K.BRANCH: 0.1},
                ),
            ),
        )
        trace = generate_trace(spec)
        result = MCDProcessor(trace, config=_quiet()).run()
        assert sum(result.issued_by_domain.values()) == result.instructions

    def test_issued_history_monotone(self):
        trace = _trace([(K.FP_ADD, [])] * 1500)
        result = MCDProcessor(trace, config=_quiet(), history_stride=1).run()
        series = result.history.issued[DomainId.FP]
        assert all(a <= b for a, b in zip(series, series[1:]))
        assert series[-1] == 1500

    def test_history_series_lengths_match(self):
        trace = _trace([(K.INT_ALU, [])] * 1200)
        result = MCDProcessor(trace, config=_quiet(), history_stride=2).run()
        h = result.history
        n = len(h.time_ns)
        for domain in CONTROLLED_DOMAINS:
            assert len(h.occupancy[domain]) == n
            assert len(h.frequency_ghz[domain]) == n
            assert len(h.issued[domain]) == n
