"""Unit tests for the reorder buffer."""

import math

import pytest

from repro.mcd.rob import ReorderBuffer
from repro.workloads.instructions import Instruction, InstructionKind as K


def _inst(index):
    return Instruction(index=index, kind=K.INT_ALU, pc=0x400000 + 4 * index)


class TestAllocate:
    def test_fills_to_capacity(self):
        rob = ReorderBuffer(4)
        for i in range(4):
            rob.allocate(_inst(i), now_ns=0.0)
        assert rob.is_full

    def test_allocate_when_full_raises(self):
        rob = ReorderBuffer(1)
        rob.allocate(_inst(0), 0.0)
        with pytest.raises(RuntimeError):
            rob.allocate(_inst(1), 0.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestCompletion:
    def test_mark_done_sets_entry_time(self):
        rob = ReorderBuffer(8)
        rob.allocate(_inst(0), 0.0)
        rob.mark_done(0, 5.0)
        assert rob.entry(0).is_done(5.0)
        assert not rob.entry(0).is_done(4.9)

    def test_completion_survives_retirement(self):
        rob = ReorderBuffer(8)
        rob.allocate(_inst(0), 0.0)
        rob.mark_done(0, 1.0)
        rob.retire(2.0, width=8)
        assert rob.completion_time(0) == pytest.approx(1.0)

    def test_operand_ready_semantics(self):
        rob = ReorderBuffer(8)
        rob.allocate(_inst(0), 0.0)
        assert rob.operand_ready(None, 0.0)          # immediate
        assert not rob.operand_ready(0, 10.0)        # not issued yet
        rob.mark_done(0, 5.0)
        assert not rob.operand_ready(0, 4.0)         # in flight
        assert rob.operand_ready(0, 5.0)

    def test_head_done_ns(self):
        rob = ReorderBuffer(8)
        assert rob.head_done_ns is None
        rob.allocate(_inst(0), 0.0)
        assert math.isinf(rob.head_done_ns)
        rob.mark_done(0, 3.0)
        assert rob.head_done_ns == pytest.approx(3.0)

    def test_head_done_callback(self):
        fired = []
        rob = ReorderBuffer(8)
        rob.on_head_done = fired.append
        rob.allocate(_inst(0), 0.0)
        rob.allocate(_inst(1), 0.0)
        rob.mark_done(1, 2.0)  # not head: no callback
        assert fired == []
        rob.mark_done(0, 4.0)  # head: callback
        assert fired == [4.0]


class TestRetire:
    def test_in_order_retire_blocks_on_incomplete_head(self):
        rob = ReorderBuffer(8)
        for i in range(3):
            rob.allocate(_inst(i), 0.0)
        rob.mark_done(1, 1.0)
        rob.mark_done(2, 1.0)
        assert rob.retire(5.0, width=8) == 0  # head (0) not done
        rob.mark_done(0, 2.0)
        assert rob.retire(5.0, width=8) == 3

    def test_retire_respects_width(self):
        rob = ReorderBuffer(8)
        for i in range(6):
            rob.allocate(_inst(i), 0.0)
            rob.mark_done(i, 0.5)
        assert rob.retire(1.0, width=4) == 4
        assert rob.retire(1.0, width=4) == 2
        assert rob.retired == 6

    def test_retire_respects_completion_time(self):
        rob = ReorderBuffer(8)
        rob.allocate(_inst(0), 0.0)
        rob.mark_done(0, 10.0)
        assert rob.retire(9.0, width=8) == 0
        assert rob.retire(10.0, width=8) == 1

    def test_occupancy_tracks_allocation_and_retire(self):
        rob = ReorderBuffer(8)
        rob.allocate(_inst(0), 0.0)
        assert rob.occupancy == 1
        rob.mark_done(0, 0.0)
        rob.retire(1.0, 8)
        assert rob.is_empty
