"""Unit tests for the combined branch predictor."""

import pytest

from repro.mcd.branch import CombinedPredictor, _Bimodal, _TwoLevel, _BTB, _saturate


class TestSaturatingCounter:
    def test_saturates_high(self):
        assert _saturate(3, True) == 3

    def test_saturates_low(self):
        assert _saturate(0, False) == 0

    def test_moves(self):
        assert _saturate(1, True) == 2
        assert _saturate(2, False) == 1


class TestBimodal:
    def test_learns_always_taken(self):
        b = _Bimodal(64)
        for _ in range(4):
            b.update(0x100, True)
        assert b.predict(0x100)

    def test_learns_never_taken(self):
        b = _Bimodal(64)
        for _ in range(4):
            b.update(0x100, False)
        assert not b.predict(0x100)

    def test_pcs_alias_by_table_size(self):
        b = _Bimodal(16)
        for _ in range(4):
            b.update(0x0, False)
        # pc 16*4 = 0x40 aliases to the same entry
        assert not b.predict(0x40)


class TestTwoLevel:
    def test_learns_alternating_pattern(self):
        """Bimodal cannot learn T,N,T,N...; history-based prediction can."""
        two = _TwoLevel(64, 8, 256)
        outcome = True
        for _ in range(200):
            two.update(0x100, outcome)
            outcome = not outcome
        correct = 0
        for _ in range(100):
            correct += two.predict(0x100) == outcome
            two.update(0x100, outcome)
            outcome = not outcome
        assert correct >= 95

    def test_history_is_per_pc(self):
        two = _TwoLevel(64, 8, 256)
        two.update(0x100, True)
        assert two.histories[two._l1_index(0x100)] == 1
        assert two.histories[two._l1_index(0x104)] == 0


class TestBTB:
    def test_lookup_after_insert(self):
        btb = _BTB(sets=16, ways=2)
        btb.insert(0x100, 0x900)
        assert btb.lookup(0x100) == 0x900

    def test_miss_returns_none(self):
        assert _BTB(16, 2).lookup(0x100) is None

    def test_lru_within_set(self):
        btb = _BTB(sets=1, ways=2)
        btb.insert(0x0, 1)
        btb.insert(0x4, 2)
        btb.lookup(0x0)      # refresh 0x0
        btb.insert(0x8, 3)   # evicts 0x4
        assert btb.lookup(0x0) == 1
        assert btb.lookup(0x4) is None
        assert btb.lookup(0x8) == 3


class TestCombinedPredictor:
    def test_learns_biased_branch(self):
        p = CombinedPredictor()
        for _ in range(50):
            p.resolve(0x400100, True, 0x400200)
        assert p.mispredict_rate < 0.1

    def test_wrong_direction_counts_as_mispredict(self):
        p = CombinedPredictor()
        for _ in range(20):
            p.resolve(0x100, True, 0x200)
        before = p.mispredictions
        p.resolve(0x100, False, 0x200)
        assert p.mispredictions == before + 1

    def test_wrong_target_counts_as_mispredict(self):
        p = CombinedPredictor()
        for _ in range(20):
            p.resolve(0x100, True, 0x200)
        before = p.mispredictions
        p.resolve(0x100, True, 0x999)  # direction right, target wrong
        assert p.mispredictions == before + 1

    def test_not_taken_needs_no_target(self):
        p = CombinedPredictor()
        for _ in range(20):
            p.resolve(0x100, False, 0x200)
        assert p.mispredict_rate < 0.2

    def test_meta_chooser_picks_twolevel_for_patterns(self):
        """An alternating branch should end up well-predicted overall."""
        p = CombinedPredictor()
        outcome = True
        for _ in range(400):
            p.resolve(0x100, outcome, 0x200)
            outcome = not outcome
        # measure on the tail only
        correct = 0
        for _ in range(100):
            correct += p.resolve(0x100, outcome, 0x200)
            outcome = not outcome
        assert correct >= 90

    def test_from_config_sizes(self, machine):
        p = CombinedPredictor.from_config(machine)
        assert len(p.bimodal.table) == machine.bimodal_size
        assert len(p.meta) == machine.meta_size

    def test_rate_starts_at_zero(self):
        assert CombinedPredictor().mispredict_rate == 0.0
