"""Unit tests for fast-workload-variation classification."""

import pytest

np = pytest.importorskip("numpy")  # the spectral layer is numpy-gated

from repro.spectral.classify import (
    FAST_WAVELENGTH_SAMPLES,
    band_variance,
    classify_fast_varying,
    classify_fast_varying_trace,
    demand_shares,
    fast_variation_metric,
    workload_fast_variation_metric,
)
from repro.spectral.multitaper import multitaper_spectrum
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def _signal(wavelength, amplitude=4.0, n=16384):
    t = np.arange(n)
    return amplitude * np.sin(2 * np.pi * t / wavelength)


class TestBandVariance:
    def test_band_captures_in_band_tone(self):
        x = _signal(wavelength=300)
        spec = multitaper_spectrum(x)
        v = band_variance(spec, 8, FAST_WAVELENGTH_SAMPLES)
        assert v == pytest.approx(8.0, rel=0.2)  # amp^2/2

    def test_band_excludes_out_of_band_tone(self):
        x = _signal(wavelength=8000)
        spec = multitaper_spectrum(x)
        v = band_variance(spec, 8, 2500)
        assert v < 0.8

    def test_rejects_bad_bounds(self):
        spec = multitaper_spectrum(np.zeros(64) + np.arange(64) % 2)
        with pytest.raises(ValueError):
            band_variance(spec, 100, 10)


class TestClassification:
    def test_fast_swing_classified_fast(self):
        """A +-4-entry swing at 500-sample wavelength (2 us) is fast."""
        x = 4.0 + _signal(wavelength=500)
        assert classify_fast_varying(x)

    def test_slow_swing_classified_steady(self):
        """The same swing at 20000-sample wavelength (80 us) is not."""
        x = 4.0 + _signal(wavelength=20000, n=65536)
        assert not classify_fast_varying(x)

    def test_small_noise_classified_steady(self):
        rng = np.random.default_rng(3)
        x = 4.0 + 0.5 * rng.standard_normal(16384)
        assert not classify_fast_varying(x)

    def test_metric_monotone_in_amplitude(self):
        small = fast_variation_metric(4.0 + 0.5 * _signal(500) / 4.0)
        big = fast_variation_metric(4.0 + _signal(500))
        assert big > small

    def test_interval_parameter_shifts_the_boundary(self):
        """A 5000-sample swing is invisible to a 2500-sample interval metric
        but counts against a 10000-sample interval."""
        x = 4.0 + _signal(wavelength=5000, n=65536)
        short = fast_variation_metric(x, interval_samples=2500)
        long = fast_variation_metric(x, interval_samples=10000)
        assert long > 4 * short


def _alternating_spec(burst, repeats, mix_a, mix_b):
    a = PhaseSpec(name="a", length=burst, mix=mix_a)
    b = PhaseSpec(name="b", length=burst, mix=mix_b)
    return BenchmarkSpec(
        name="clf-test", suite="mediabench", phases=tuple([a, b] * repeats)
    )


def _steady_spec(length, mix):
    return BenchmarkSpec(
        name="clf-steady",
        suite="mediabench",
        phases=(PhaseSpec(name="s", length=length, mix=mix),),
    )


INT_MIX = {K.INT_ALU: 0.6, K.LOAD: 0.2, K.BRANCH: 0.2}
FP_MIX = {K.FP_ADD: 0.5, K.INT_ALU: 0.3, K.LOAD: 0.2}


class TestDemandShares:
    def test_shape_and_normalization(self):
        trace = generate_trace(_steady_spec(5000, INT_MIX))
        shares = demand_shares(trace, window=100)
        assert shares.shape == (5, 50)
        assert np.allclose(shares.sum(axis=0), 1.0)

    def test_rejects_bad_window(self):
        trace = generate_trace(_steady_spec(1000, INT_MIX))
        with pytest.raises(ValueError):
            demand_shares(trace, window=0)

    def test_fp_channel_tracks_fp_phase(self):
        spec = _alternating_spec(2000, 8, INT_MIX, FP_MIX)
        trace = generate_trace(spec)
        shares = demand_shares(trace, window=500)
        fp = shares[0]
        # alternation: FP share swings between ~0 and ~0.5
        assert fp.max() > 0.3
        assert fp.min() < 0.1


class TestWorkloadMetric:
    def test_alternating_workload_scores_high(self):
        spec = _alternating_spec(2000, 20, INT_MIX, FP_MIX)
        metric = workload_fast_variation_metric(generate_trace(spec))
        assert metric > 0.01

    def test_steady_workload_scores_near_zero(self):
        metric = workload_fast_variation_metric(
            generate_trace(_steady_spec(80_000, INT_MIX))
        )
        assert metric < 0.005

    def test_slow_phases_score_low(self):
        """Two long phases (each >> the interval) are not fast variation."""
        spec = BenchmarkSpec(
            name="clf-slow",
            suite="mediabench",
            phases=(
                PhaseSpec(name="a", length=40_000, mix=INT_MIX),
                PhaseSpec(name="b", length=40_000, mix=FP_MIX),
            ),
        )
        metric = workload_fast_variation_metric(generate_trace(spec))
        assert metric < 0.01

    def test_rejects_short_trace(self):
        with pytest.raises(ValueError, match="too short"):
            workload_fast_variation_metric(
                generate_trace(_steady_spec(2000, INT_MIX))
            )

    def test_rejects_degenerate_interval(self):
        trace = generate_trace(_steady_spec(80_000, INT_MIX))
        with pytest.raises(ValueError):
            workload_fast_variation_metric(trace, window=500,
                                           interval_instructions=1000.0)


class TestTraceClassifier:
    def test_suite_ground_truth_sample(self):
        """The classifier agrees with the labels of representative suite
        members (the full-suite check runs in the Table-2 bench)."""
        from repro.workloads.suite import get_benchmark

        for name, expected in (
            ("gsm-decode", True),
            ("mpeg2-decode", True),
            ("gzip", False),
            ("swim", False),
        ):
            trace = generate_trace(get_benchmark(name))
            assert classify_fast_varying_trace(trace) == expected, name
