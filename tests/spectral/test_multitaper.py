"""Unit tests for the multi-taper spectrum estimator."""

import pytest

np = pytest.importorskip("numpy")  # the spectral layer is numpy-gated

from repro.spectral.multitaper import VarianceSpectrum, multitaper_spectrum


class TestNormalization:
    def test_parseval_white_noise(self):
        """Total spectral variance must match the series variance."""
        rng = np.random.default_rng(1)
        x = rng.standard_normal(4096)
        spec = multitaper_spectrum(x)
        assert spec.total_variance == pytest.approx(float(x.var()), rel=0.1)

    def test_parseval_sinusoid(self):
        t = np.arange(4096)
        x = 3.0 * np.sin(2 * np.pi * t / 64)
        spec = multitaper_spectrum(x)
        assert spec.total_variance == pytest.approx(4.5, rel=0.1)

    def test_mean_removed(self):
        """A constant offset contributes nothing."""
        x = np.full(1024, 7.0)
        spec = multitaper_spectrum(x + np.sin(np.arange(1024) / 10))
        spec_no_offset = multitaper_spectrum(np.sin(np.arange(1024) / 10))
        assert spec.total_variance == pytest.approx(
            spec_no_offset.total_variance, rel=0.05
        )


class TestPeakLocation:
    def test_peak_at_signal_frequency(self):
        t = np.arange(8192)
        wavelength = 128.0
        x = np.sin(2 * np.pi * t / wavelength)
        spec = multitaper_spectrum(x)
        peak_freq = spec.frequency[int(np.argmax(spec.density))]
        assert peak_freq == pytest.approx(1.0 / wavelength, rel=0.05)

    def test_two_tones_separate(self):
        t = np.arange(8192)
        x = np.sin(2 * np.pi * t / 50) + 2.0 * np.sin(2 * np.pi * t / 1000)
        spec = multitaper_spectrum(x)
        hi = (spec.frequency > 1 / 60) & (spec.frequency < 1 / 40)
        lo = (spec.frequency > 1 / 1200) & (spec.frequency < 1 / 800)
        v_hi = float(np.sum(spec.density[hi]) * spec.df)
        v_lo = float(np.sum(spec.density[lo]) * spec.df)
        assert v_lo == pytest.approx(2.0, rel=0.3)
        assert v_hi == pytest.approx(0.5, rel=0.3)


class TestApi:
    def test_wavelength_axis(self):
        spec = multitaper_spectrum(np.random.default_rng(0).standard_normal(256))
        assert np.isinf(spec.wavelength[0])  # DC
        assert spec.wavelength[-1] == pytest.approx(2.0)  # Nyquist

    def test_rejects_short_series(self):
        with pytest.raises(ValueError):
            multitaper_spectrum([1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            multitaper_spectrum(np.zeros((4, 4)))

    def test_rejects_zero_tapers(self):
        with pytest.raises(ValueError):
            multitaper_spectrum(np.zeros(64), n_tapers=0)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            VarianceSpectrum(frequency=np.zeros(4), density=np.zeros(5))

    def test_more_tapers_lower_estimator_variance(self):
        """Averaging more tapers smooths the white-noise spectrum."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal(4096)
        rough = multitaper_spectrum(x, n_tapers=1).density
        smooth = multitaper_spectrum(x, n_tapers=7).density
        assert np.std(smooth[1:]) < np.std(rough[1:])
