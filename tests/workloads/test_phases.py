"""Unit tests for phase and benchmark specifications."""

import pytest

from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec, phase_boundaries


def _phase(**kw):
    defaults = dict(name="p", length=100, mix={K.INT_ALU: 1.0})
    defaults.update(kw)
    return PhaseSpec(**defaults)


class TestPhaseSpec:
    def test_mix_is_normalized(self):
        phase = _phase(mix={K.INT_ALU: 2.0, K.LOAD: 2.0})
        assert phase.mix[K.INT_ALU] == pytest.approx(0.5)
        assert phase.mix[K.LOAD] == pytest.approx(0.5)

    def test_zero_weights_dropped(self):
        phase = _phase(mix={K.INT_ALU: 1.0, K.FP_ADD: 0.0})
        assert K.FP_ADD not in phase.mix

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            _phase(mix={K.INT_ALU: 0.0})

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            _phase(length=0)

    def test_rejects_bad_dep_distance(self):
        with pytest.raises(ValueError):
            _phase(mean_dep_distance=0.5)

    def test_rejects_bad_entropy(self):
        with pytest.raises(ValueError):
            _phase(branch_entropy=0.6)

    def test_rejects_bad_hot_fractions(self):
        with pytest.raises(ValueError):
            _phase(hot_code_fraction=1.5)
        with pytest.raises(ValueError):
            _phase(hot_data_size=0)

    def test_scaled_changes_only_length(self):
        phase = _phase(length=1000, working_set=64 * 1024)
        scaled = phase.scaled(0.25)
        assert scaled.length == 250
        assert scaled.working_set == phase.working_set
        assert scaled.mix == phase.mix

    def test_scaled_floors_at_one(self):
        assert _phase(length=10).scaled(0.001).length == 1


class TestBenchmarkSpec:
    def _spec(self, lengths=(100, 300)):
        phases = tuple(_phase(name=f"p{i}", length=n) for i, n in enumerate(lengths))
        return BenchmarkSpec(name="bench", suite="mediabench", phases=phases)

    def test_length_is_sum_of_phases(self):
        assert self._spec((100, 300)).length == 400

    def test_requires_phases(self):
        with pytest.raises(ValueError):
            BenchmarkSpec(name="x", suite="mediabench", phases=())

    def test_rejects_unknown_suite(self):
        with pytest.raises(ValueError, match="suite"):
            BenchmarkSpec(name="x", suite="spec95", phases=(_phase(),))

    def test_seed_derived_from_name(self):
        a = BenchmarkSpec(name="aaa", suite="mediabench", phases=(_phase(),))
        b = BenchmarkSpec(name="bbb", suite="mediabench", phases=(_phase(),))
        assert a.seed != b.seed
        assert a.seed == BenchmarkSpec(name="aaa", suite="mediabench", phases=(_phase(),)).seed

    def test_truncated_preserves_proportions(self):
        spec = self._spec((1000, 3000))
        cut = spec.truncated(400)
        assert cut.length == pytest.approx(400, abs=2)
        assert cut.phases[0].length == pytest.approx(100, abs=2)
        assert cut.phases[1].length == pytest.approx(300, abs=2)

    def test_truncated_noop_when_short_enough(self):
        spec = self._spec((100, 100))
        assert spec.truncated(1000) is spec

    def test_truncated_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            self._spec().truncated(0)

    def test_scaled_keeps_identity_fields(self):
        spec = self._spec()
        scaled = spec.scaled(0.5)
        assert scaled.name == spec.name
        assert scaled.seed == spec.seed
        assert scaled.fast_varying == spec.fast_varying


def test_phase_boundaries():
    phases = [_phase(length=10), _phase(length=20), _phase(length=5)]
    assert phase_boundaries(phases) == [10, 30, 35]
