"""Tests for the generator's locality models (hot code / hot data)."""

from collections import Counter

import pytest

from repro.workloads.generator import generate_trace, _CODE_BASE, _DATA_BASE
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def _spec(**phase_kw):
    defaults = dict(
        name="loc",
        length=20_000,
        mix={K.INT_ALU: 0.4, K.LOAD: 0.3, K.STORE: 0.1, K.BRANCH: 0.2},
    )
    defaults.update(phase_kw)
    return BenchmarkSpec(
        name="loc-test", suite="mediabench", phases=(PhaseSpec(**defaults),)
    )


class TestHotData:
    def test_hot_fraction_concentrates_accesses(self):
        spec = _spec(
            working_set=1024 * 1024,
            hot_data_fraction=0.8,
            hot_data_size=4096,
            stride_fraction=0.0,
        )
        trace = generate_trace(spec)
        addrs = [i.addr for i in trace if i.kind.is_mem]
        hot = sum(1 for a in addrs if a < _DATA_BASE + 4096)
        assert hot / len(addrs) > 0.7

    def test_zero_hot_fraction_spreads_accesses(self):
        spec = _spec(
            working_set=1024 * 1024,
            hot_data_fraction=0.0,
            stride_fraction=0.0,
        )
        trace = generate_trace(spec)
        addrs = [i.addr for i in trace if i.kind.is_mem]
        hot = sum(1 for a in addrs if a < _DATA_BASE + 4096)
        assert hot / len(addrs) < 0.05

    def test_stride_component_walks_sequentially(self):
        spec = _spec(
            working_set=1024 * 1024,
            hot_data_fraction=0.0,
            stride_fraction=1.0,
        )
        trace = generate_trace(spec)
        addrs = [i.addr for i in trace if i.kind.is_mem]
        diffs = Counter(b - a for a, b in zip(addrs, addrs[1:]))
        # pure striding: constant 8-byte steps (modulo wraparound)
        assert diffs[8] / len(addrs) > 0.95


class TestHotCode:
    def test_execution_concentrates_in_hot_region(self):
        spec = _spec(
            code_footprint=256 * 1024,
            hot_code_fraction=1.0,
            hot_code_size=2048,
        )
        trace = generate_trace(spec)
        in_hot = sum(1 for i in trace if i.pc < _CODE_BASE + 2048)
        assert in_hot / len(trace) > 0.8

    def test_cold_excursions_with_partial_hotness(self):
        spec = _spec(
            code_footprint=256 * 1024,
            hot_code_fraction=0.5,
            hot_code_size=2048,
        )
        trace = generate_trace(spec)
        cold = sum(1 for i in trace if i.pc >= _CODE_BASE + 2048)
        assert cold > 0  # cold code genuinely executes

    def test_hot_region_clamped_to_footprint(self):
        """hot_code_size larger than the footprint must not place targets
        outside the footprint."""
        spec = _spec(code_footprint=1024, hot_code_size=64 * 1024)
        trace = generate_trace(spec)
        for inst in trace:
            assert inst.pc < _CODE_BASE + 1024
