"""Tests for trace file I/O."""

import json

import pytest

from repro.mcd.processor import MCDProcessor
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import Instruction, InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec
from repro.workloads.traceio import load_trace, save_trace


def _trace():
    spec = BenchmarkSpec(
        name="io-test",
        suite="mediabench",
        phases=(
            PhaseSpec(
                name="p",
                length=2000,
                mix={K.INT_ALU: 0.4, K.FP_ADD: 0.2, K.LOAD: 0.2,
                     K.STORE: 0.05, K.BRANCH: 0.15},
            ),
        ),
    )
    return generate_trace(spec)


class TestRoundTrip:
    def test_roundtrip_identity(self, tmp_path):
        trace = _trace()
        path = str(tmp_path / "t.jsonl")
        save_trace(path, trace)
        assert load_trace(path) == trace

    def test_reloaded_trace_simulates_identically(self, tmp_path):
        trace = _trace()
        path = str(tmp_path / "t.jsonl")
        save_trace(path, trace)
        reloaded = load_trace(path)
        a = MCDProcessor(trace, seed=3, record_history=False).run()
        b = MCDProcessor(reloaded, seed=3, record_history=False).run()
        assert a.time_ns == b.time_ns
        assert a.energy.total == pytest.approx(b.energy.total)

    def test_header_present(self, tmp_path):
        path = tmp_path / "t.jsonl"
        save_trace(str(path), _trace()[:10])
        header = json.loads(path.read_text().splitlines()[0])
        assert header["format"] == "repro-trace"


class TestValidation:
    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            load_trace(str(path))

    def test_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "w.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(ValueError, match="not a repro-trace"):
            load_trace(str(path))

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v.jsonl"
        path.write_text('{"format": "repro-trace", "version": 99}\n{"i":0,"k":"int_alu","pc":0}\n')
        with pytest.raises(ValueError, match="version"):
            load_trace(str(path))

    def test_rejects_index_gap(self, tmp_path):
        path = tmp_path / "g.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1}\n'
            '{"i":0,"k":"int_alu","pc":0}\n'
            '{"i":2,"k":"int_alu","pc":4}\n'
        )
        with pytest.raises(ValueError, match="expected index 1"):
            load_trace(str(path))

    def test_rejects_unknown_kind(self, tmp_path):
        path = tmp_path / "k.jsonl"
        path.write_text(
            '{"format": "repro-trace", "version": 1}\n'
            '{"i":0,"k":"warp_drive","pc":0}\n'
        )
        with pytest.raises(ValueError, match="malformed"):
            load_trace(str(path))

    def test_rejects_no_instructions(self, tmp_path):
        path = tmp_path / "n.jsonl"
        path.write_text('{"format": "repro-trace", "version": 1}\n')
        with pytest.raises(ValueError, match="no instructions"):
            load_trace(str(path))

    def test_branch_fields_preserved(self, tmp_path):
        trace = [
            Instruction(index=0, kind=K.BRANCH, pc=0x100, taken=True, target=0x200),
        ]
        path = str(tmp_path / "b.jsonl")
        save_trace(path, trace)
        loaded = load_trace(path)
        assert loaded[0].taken and loaded[0].target == 0x200
