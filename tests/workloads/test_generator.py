"""Unit tests for the synthetic trace generator."""

from collections import Counter

import pytest

from repro.workloads.generator import TraceGenerator, generate_trace, _CODE_BASE, _DATA_BASE
from repro.workloads.instructions import InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec


def _spec(phases):
    return BenchmarkSpec(name="gen-test", suite="mediabench", phases=tuple(phases))


def _phase(**kw):
    defaults = dict(
        name="p",
        length=5000,
        mix={K.INT_ALU: 0.5, K.LOAD: 0.2, K.STORE: 0.1, K.BRANCH: 0.2},
    )
    defaults.update(kw)
    return PhaseSpec(**defaults)


class TestDeterminism:
    def test_same_seed_same_trace(self):
        spec = _spec([_phase()])
        a = generate_trace(spec)
        b = generate_trace(spec)
        assert a == b

    def test_different_seed_different_trace(self):
        spec = _spec([_phase()])
        a = generate_trace(spec, seed=1)
        b = generate_trace(spec, seed=2)
        assert a != b


class TestTraceStructure:
    def test_length(self):
        trace = generate_trace(_spec([_phase(length=1234)]))
        assert len(trace) == 1234

    def test_indices_sequential(self):
        trace = generate_trace(_spec([_phase(length=500)]))
        assert [i.index for i in trace] == list(range(500))

    def test_truncation(self):
        trace = generate_trace(_spec([_phase(length=5000)]), max_instructions=100)
        assert len(trace) == 100

    def test_mix_roughly_respected(self):
        trace = generate_trace(_spec([_phase(length=20000)]))
        counts = Counter(i.kind for i in trace)
        assert counts[K.INT_ALU] / len(trace) == pytest.approx(0.5, abs=0.08)
        assert counts[K.BRANCH] / len(trace) == pytest.approx(0.2, abs=0.08)

    def test_phase_change_changes_mix(self):
        fp = _phase(name="fp", length=5000, mix={K.FP_ADD: 0.8, K.LOAD: 0.2})
        trace = generate_trace(_spec([_phase(length=5000), fp]))
        first = Counter(i.kind for i in trace[:5000])
        second = Counter(i.kind for i in trace[5000:])
        assert first[K.FP_ADD] == 0
        assert second[K.FP_ADD] > 3000

    def test_memory_ops_have_addresses_in_working_set(self):
        phase = _phase(working_set=4096)
        trace = generate_trace(_spec([phase]))
        for inst in trace:
            if inst.kind.is_mem:
                assert _DATA_BASE <= inst.addr < _DATA_BASE + 4096

    def test_pcs_inside_code_footprint(self):
        phase = _phase(code_footprint=2048)
        trace = generate_trace(_spec([phase]))
        for inst in trace:
            assert _CODE_BASE <= inst.pc < _CODE_BASE + 2048

    def test_dependences_point_backwards(self):
        trace = generate_trace(_spec([_phase()]))
        for inst in trace:
            for src in (inst.src1, inst.src2):
                if src is not None:
                    assert 0 <= src < inst.index


class TestStaticCodeLayout:
    def test_kind_is_function_of_pc(self):
        """The same PC always hosts the same opcode class within a phase."""
        trace = generate_trace(_spec([_phase(length=20000, code_footprint=1024)]))
        kind_at = {}
        for inst in trace:
            assert kind_at.setdefault(inst.pc, inst.kind) == inst.kind

    def test_branch_targets_static(self):
        trace = generate_trace(_spec([_phase(length=20000)]))
        target_at = {}
        for inst in trace:
            if inst.kind is K.BRANCH:
                assert target_at.setdefault(inst.pc, inst.target) == inst.target

    def test_branch_sites_warm_up(self):
        """Dynamic branches concentrate on few static sites (hot loops)."""
        trace = generate_trace(_spec([_phase(length=30000, code_footprint=64 * 1024)]))
        branches = [i for i in trace if i.kind is K.BRANCH]
        sites = {b.pc for b in branches}
        assert len(branches) / max(1, len(sites)) > 5  # each site re-executed


class TestBranchBehaviour:
    def test_taken_bias(self):
        phase = _phase(length=20000, branch_taken_bias=0.9, branch_entropy=0.0)
        trace = generate_trace(_spec([phase]))
        branches = [i for i in trace if i.kind is K.BRANCH]
        taken = sum(b.taken for b in branches)
        assert taken / len(branches) > 0.7

    def test_zero_entropy_outcomes_stable_per_pc(self):
        phase = _phase(length=20000, branch_entropy=0.0)
        trace = generate_trace(_spec([phase]))
        outcome_at = {}
        for inst in trace:
            if inst.kind is K.BRANCH:
                assert outcome_at.setdefault(inst.pc, inst.taken) == inst.taken

    def test_hot_code_concentration(self):
        phase = _phase(
            length=30000,
            code_footprint=128 * 1024,
            hot_code_fraction=0.95,
            hot_code_size=4096,
        )
        trace = generate_trace(_spec([phase]))
        in_hot = sum(1 for i in trace if i.pc < _CODE_BASE + 4096)
        assert in_hot / len(trace) > 0.5


class TestIterator:
    def test_generator_iterates_lazily(self):
        gen = TraceGenerator(_spec([_phase(length=100)]))
        first = next(iter(gen))
        assert first.index == 0

    def test_generate_matches_iteration(self):
        spec = _spec([_phase(length=50)])
        assert TraceGenerator(spec).generate() == list(TraceGenerator(spec))
