"""Unit tests for the instruction record and opcode classes."""

import pytest

from repro.workloads.instructions import Instruction, InstructionKind as K


class TestInstructionKind:
    def test_fp_kinds(self):
        assert K.FP_ADD.is_fp and K.FP_MUL.is_fp and K.FP_DIV.is_fp and K.FP_SQRT.is_fp
        assert not K.INT_ALU.is_fp
        assert not K.LOAD.is_fp

    def test_mem_kinds(self):
        assert K.LOAD.is_mem and K.STORE.is_mem
        assert not K.FP_ADD.is_mem
        assert not K.BRANCH.is_mem

    def test_int_kinds(self):
        assert K.INT_ALU.is_int and K.INT_MUL.is_int and K.INT_DIV.is_int
        assert K.BRANCH.is_int
        assert not K.LOAD.is_int and not K.FP_ADD.is_int

    def test_kind_partitions_are_disjoint(self):
        for kind in K:
            assert sum([kind.is_fp, kind.is_mem, kind.is_int]) == 1


class TestInstruction:
    def test_basic_construction(self):
        inst = Instruction(index=5, kind=K.INT_ALU, pc=0x400000, src1=3, src2=None)
        assert inst.index == 5
        assert inst.src1 == 3

    def test_memory_requires_address(self):
        with pytest.raises(ValueError, match="requires addr"):
            Instruction(index=0, kind=K.LOAD, pc=0x400000)

    def test_store_requires_address(self):
        with pytest.raises(ValueError, match="requires addr"):
            Instruction(index=1, kind=K.STORE, pc=0x400000)

    def test_producer_must_precede_consumer(self):
        with pytest.raises(ValueError, match="src1"):
            Instruction(index=2, kind=K.INT_ALU, pc=0, src1=2)
        with pytest.raises(ValueError, match="src1"):
            Instruction(index=2, kind=K.INT_ALU, pc=0, src1=7)
        with pytest.raises(ValueError, match="src2"):
            Instruction(index=2, kind=K.INT_ALU, pc=0, src2=3)

    def test_self_dependence_rejected(self):
        with pytest.raises(ValueError):
            Instruction(index=4, kind=K.INT_ALU, pc=0, src1=4)

    def test_branch_carries_outcome_and_target(self):
        inst = Instruction(index=0, kind=K.BRANCH, pc=0x100, taken=True, target=0x200)
        assert inst.taken
        assert inst.target == 0x200

    def test_frozen(self):
        inst = Instruction(index=0, kind=K.INT_ALU, pc=0)
        with pytest.raises(AttributeError):
            inst.pc = 4
