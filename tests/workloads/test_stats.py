"""Tests for trace statistics."""

import pytest

from repro.mcd.domains import DomainId
from repro.workloads.generator import generate_trace
from repro.workloads.instructions import Instruction, InstructionKind as K
from repro.workloads.phases import BenchmarkSpec, PhaseSpec
from repro.workloads.stats import analyze_trace, format_stats


def _spec(mix, length=20_000, **kw):
    return BenchmarkSpec(
        name="stats-test",
        suite="mediabench",
        phases=(PhaseSpec(name="p", length=length, mix=mix, **kw),),
    )


class TestAnalyzeTrace:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            analyze_trace([])

    def test_rejects_bad_line_size(self):
        trace = [Instruction(index=0, kind=K.INT_ALU, pc=0)]
        with pytest.raises(ValueError):
            analyze_trace(trace, line_size=0)

    def test_mix_matches_spec(self):
        mix = {K.INT_ALU: 0.5, K.LOAD: 0.3, K.BRANCH: 0.2}
        stats = analyze_trace(generate_trace(_spec(mix)))
        assert stats.mix[K.INT_ALU] == pytest.approx(0.5, abs=0.07)
        assert stats.mix[K.LOAD] == pytest.approx(0.3, abs=0.07)

    def test_domain_shares_sum_to_one(self):
        mix = {K.INT_ALU: 0.4, K.FP_ADD: 0.3, K.LOAD: 0.3}
        stats = analyze_trace(generate_trace(_spec(mix)))
        assert sum(stats.domain_shares.values()) == pytest.approx(1.0)
        assert stats.fp_share == pytest.approx(0.3, abs=0.07)
        assert stats.mem_share == pytest.approx(0.3, abs=0.07)

    def test_dep_distance_tracks_spec(self):
        mix = {K.INT_ALU: 1.0}
        short = analyze_trace(
            generate_trace(_spec(mix, mean_dep_distance=2.0))
        ).mean_dep_distance
        long = analyze_trace(
            generate_trace(_spec(mix, mean_dep_distance=12.0))
        ).mean_dep_distance
        assert long > 2 * short

    def test_dep_density(self):
        mix = {K.INT_ALU: 1.0}
        dense = analyze_trace(generate_trace(_spec(mix, dep_density=0.9)))
        sparse = analyze_trace(generate_trace(_spec(mix, dep_density=0.1)))
        assert dense.dep_density > 3 * sparse.dep_density

    def test_branch_statistics(self):
        mix = {K.INT_ALU: 0.7, K.BRANCH: 0.3}
        # a large uniform footprint gives many branch sites, so the realized
        # taken fraction tracks the per-site bias instead of a handful of
        # hot sites' coin flips
        stats = analyze_trace(
            generate_trace(
                _spec(
                    mix,
                    branch_taken_bias=0.95,
                    branch_entropy=0.0,
                    code_footprint=16 * 1024,
                    hot_code_size=16 * 1024,
                )
            )
        )
        # dynamic share can skew from the static mix when taken branches
        # concentrate execution on branchy slots
        assert 0.15 * 20_000 <= stats.branch_count <= 0.5 * 20_000
        assert stats.branch_taken_fraction > 0.6
        assert 0 < stats.branch_sites <= stats.branch_count

    def test_working_set_bounded_by_spec(self):
        mix = {K.LOAD: 0.5, K.INT_ALU: 0.5}
        stats = analyze_trace(
            generate_trace(_spec(mix, working_set=8 * 1024))
        )
        assert stats.data_working_set_bytes <= 8 * 1024 + 64

    def test_code_footprint_bounded_by_spec(self):
        mix = {K.INT_ALU: 1.0}
        stats = analyze_trace(
            generate_trace(_spec(mix, code_footprint=2048))
        )
        assert stats.code_footprint_bytes <= 2048 + 64


class TestFormat:
    def test_format_renders_all_sections(self):
        mix = {K.INT_ALU: 0.6, K.LOAD: 0.2, K.BRANCH: 0.2}
        stats = analyze_trace(generate_trace(_spec(mix, length=5000)))
        text = format_stats(stats)
        for needle in ("instructions", "mix", "dep distance", "branches",
                       "code footprint", "data working set"):
            assert needle in text
