"""Tests for the named benchmark suite (the paper's Table 2 population)."""

import pytest

from repro.workloads.instructions import InstructionKind as K
from repro.workloads.suite import (
    BENCHMARKS,
    FAST_VARYING_GROUP,
    MEDIABENCH,
    SPEC2000_FP,
    SPEC2000_INT,
    get_benchmark,
)


class TestTable2Population:
    def test_suite_sizes_match_paper(self):
        """6 MediaBench, 6 SPEC2000int, 5 SPEC2000fp."""
        assert len(MEDIABENCH) == 6
        assert len(SPEC2000_INT) == 6
        assert len(SPEC2000_FP) == 5

    def test_suites_labelled_consistently(self):
        for spec in MEDIABENCH:
            assert spec.suite == "mediabench"
        for spec in SPEC2000_INT:
            assert spec.suite == "spec2000int"
        for spec in SPEC2000_FP:
            assert spec.suite == "spec2000fp"

    def test_names_unique(self):
        names = [s.name for s in MEDIABENCH + SPEC2000_INT + SPEC2000_FP]
        assert len(names) == len(set(names))

    def test_lookup_by_name(self):
        assert get_benchmark("epic-decode").name == "epic-decode"

    def test_lookup_unknown_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="known:"):
            get_benchmark("quake3")

    def test_all_benchmarks_have_notes(self):
        for spec in BENCHMARKS.values():
            assert spec.notes, f"{spec.name} lacks provenance notes"

    def test_seeds_distinct(self):
        seeds = [s.seed for s in BENCHMARKS.values()]
        assert len(seeds) == len(set(seeds))


class TestFastVaryingGroup:
    def test_group_nonempty_and_labelled(self):
        assert len(FAST_VARYING_GROUP) >= 4
        for name in FAST_VARYING_GROUP:
            assert get_benchmark(name).fast_varying

    def test_fast_varying_have_short_phases(self):
        """Fast-varying benchmarks swing faster than a 10k-cycle interval."""
        for name in FAST_VARYING_GROUP:
            spec = get_benchmark(name)
            assert len(spec.phases) >= 10
            assert max(p.length for p in spec.phases) <= 5000

    def test_steady_benchmarks_have_long_phases(self):
        for spec in BENCHMARKS.values():
            if not spec.fast_varying:
                assert max(p.length for p in spec.phases) >= 20_000


class TestEpicDecode:
    """epic-decode must encode the paper's Figure-7 FP-queue pattern."""

    def test_two_fp_phases(self):
        spec = get_benchmark("epic-decode")
        fp_phases = [
            p for p in spec.phases if any(k.is_fp for k in p.mix)
        ]
        assert len(fp_phases) == 2

    def test_fp_burst_is_heavier_than_modest_phase(self):
        spec = get_benchmark("epic-decode")
        fp_share = [
            sum(w for k, w in p.mix.items() if k.is_fp)
            for p in spec.phases
            if any(k.is_fp for k in p.mix)
        ]
        modest, burst = fp_share
        assert burst > 2 * modest

    def test_int_phases_have_no_fp(self):
        spec = get_benchmark("epic-decode")
        int_phases = [p for p in spec.phases if not any(k.is_fp for k in p.mix)]
        assert len(int_phases) == 3


class TestWorkloadDiversity:
    def test_memory_bound_benchmark_exists(self):
        mcf = get_benchmark("mcf")
        assert mcf.phases[0].working_set >= 4 * 1024 * 1024
        load_share = sum(w for k, w in mcf.phases[0].mix.items() if k is K.LOAD)
        assert load_share > 0.3

    def test_fp_suite_actually_fp(self):
        for spec in SPEC2000_FP:
            fp_share = max(
                sum(w for k, w in p.mix.items() if k.is_fp) for p in spec.phases
            )
            assert fp_share > 0.15, spec.name

    def test_int_suite_has_no_fp(self):
        for spec in SPEC2000_INT:
            for phase in spec.phases:
                assert not any(k.is_fp for k in phase.mix), spec.name
