"""Tests for the content-addressed result cache."""

import os

import pytest

from repro.engine.cache import (
    CACHE_VERSION,
    ResultCache,
    entry_path,
    get_by_key,
    job_cache_key,
)
from repro.engine.jobs import SweepJob, run_job
from repro.mcd.domains import DomainId, MachineConfig


@pytest.fixture(scope="module")
def job():
    return SweepJob.make("adpcm-encode", scheme="adaptive", max_instructions=1500)


@pytest.fixture(scope="module")
def result(job):
    return run_job(job)


class TestCacheKey:
    def test_stable_across_instances(self, job):
        clone = SweepJob.make(
            "adpcm-encode", scheme="adaptive", max_instructions=1500
        )
        assert job_cache_key(job) == job_cache_key(clone)

    def test_is_hex_digest(self, job):
        key = job_cache_key(job)
        assert len(key) == 64
        int(key, 16)

    @pytest.mark.parametrize(
        "other",
        [
            dict(scheme="pid"),
            dict(max_instructions=2000),
            dict(seed=99),
            dict(record_history=True),
            dict(pid_interval_ns=100.0),
            dict(adaptive_overrides={"delay_scale": 2.0}),
            dict(machine=MachineConfig(rob_size=96)),
        ],
    )
    def test_any_simulation_input_changes_key(self, job, other):
        kwargs = dict(scheme="adaptive", max_instructions=1500)
        kwargs.update(other)
        changed = SweepJob.make("adpcm-encode", **kwargs)
        assert job_cache_key(job) != job_cache_key(changed)

    def test_different_benchmark_changes_key(self, job):
        other = SweepJob.make("gzip", scheme="adaptive", max_instructions=1500)
        assert job_cache_key(job) != job_cache_key(other)


class TestResultCache:
    def test_miss_then_hit_roundtrip(self, tmp_path, job, result):
        cache = ResultCache(str(tmp_path))
        assert cache.get(job) is None
        path = cache.put(job, result)
        assert path is not None and os.path.exists(path)
        loaded = cache.get(job)
        assert loaded is not None
        assert loaded.benchmark == result.benchmark
        assert loaded.scheme == result.scheme
        assert loaded.time_ns == pytest.approx(result.time_ns)
        assert loaded.energy.total == pytest.approx(result.energy.total)
        assert loaded.energy.chip_total == pytest.approx(result.energy.chip_total)
        assert loaded.transitions == result.transitions
        assert cache.stats() == {"hits": 1, "misses": 1, "stores": 1}

    def test_entries_are_sharded_gzip_files(self, tmp_path, job):
        cache = ResultCache(str(tmp_path))
        path = cache.path_for(job)
        key = job_cache_key(job)
        assert path.endswith(".json.gz")
        assert os.path.basename(os.path.dirname(path)) == key[:2]

    def test_corrupt_entry_reads_as_miss(self, tmp_path, job, result):
        cache = ResultCache(str(tmp_path))
        cache.put(job, result)
        with open(cache.path_for(job), "wb") as handle:
            handle.write(b"not gzip at all")
        assert cache.get(job) is None

    def test_history_preserved_when_job_records_it(self, tmp_path):
        job = SweepJob.make(
            "adpcm-encode", scheme="adaptive",
            max_instructions=1500, record_history=True,
        )
        result = run_job(job)
        cache = ResultCache(str(tmp_path))
        cache.put(job, result)
        loaded = cache.get(job)
        assert loaded.history.time_ns == result.history.time_ns
        assert (
            loaded.history.frequency_ghz[DomainId.INT]
            == result.history.frequency_ghz[DomainId.INT]
        )

    def test_cache_version_participates_in_key(self, job, monkeypatch):
        before = job_cache_key(job)
        monkeypatch.setattr("repro.engine.cache.CACHE_VERSION", CACHE_VERSION + 1)
        assert job_cache_key(job) != before


class TestGetByKey:
    """Fetching cached results by bare content hash (the serve path)."""

    def test_roundtrip_by_hash(self, tmp_path, job, result):
        cache = ResultCache(str(tmp_path))
        cache.put(job, result)
        key = job_cache_key(job)

        loaded = get_by_key(key, str(tmp_path))
        assert loaded is not None
        assert loaded.benchmark == result.benchmark
        assert loaded.scheme == result.scheme
        assert loaded.time_ns == pytest.approx(result.time_ns)
        assert loaded.energy.total == pytest.approx(result.energy.total)

    def test_missing_key_is_none(self, tmp_path):
        assert get_by_key("a" * 64, str(tmp_path)) is None

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "short",
            "A" * 64,  # uppercase: not a canonical digest
            "g" * 64,  # non-hex
            "../" + "a" * 61,  # traversal attempt
            "a" * 63 + "/",
        ],
    )
    def test_malformed_keys_rejected_without_touching_disk(self, tmp_path, bad):
        assert get_by_key(bad, str(tmp_path)) is None

    def test_corrupt_entry_is_none(self, tmp_path, job, result):
        cache = ResultCache(str(tmp_path))
        cache.put(job, result)
        key = job_cache_key(job)
        with open(entry_path(str(tmp_path), key), "wb") as handle:
            handle.write(b"garbage")
        assert get_by_key(key, str(tmp_path)) is None

    def test_bound_method_counts_hit_and_miss(self, tmp_path, job, result):
        cache = ResultCache(str(tmp_path))
        cache.put(job, result)
        key = job_cache_key(job)
        assert cache.get_by_key(key) is not None
        assert cache.get_by_key("b" * 64) is None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
