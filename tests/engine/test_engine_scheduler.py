"""Tests for the sweep engine scheduler: pool, retries, timeout, fallback.

The pool tests need module-level runner functions (worker processes
unpickle them by reference); they synthesize cheap fake results so the
robustness machinery is exercised without paying for real simulations.
Parity tests use real (tiny) simulations.
"""

import time

import pytest

from repro.engine import telemetry as tm
from repro.engine.jobs import SweepJob, run_job
from repro.engine.scheduler import (
    EngineConfig,
    JobTimeoutError,
    SweepEngine,
    run_sweep,
)
from repro.harness.experiment import run_experiment
from repro.mcd.domains import CONTROLLED_DOMAINS
from repro.mcd.processor import SimulationHistory, SimulationResult
from repro.power.model import EnergyAccount


def _fake_result(job):
    energy = EnergyAccount()
    return SimulationResult(
        benchmark=job.benchmark.name,
        scheme=job.scheme,
        time_ns=1.0,
        instructions=1,
        energy=energy,
        history=SimulationHistory(),
        transitions={d: 0 for d in CONTROLLED_DOMAINS},
        mean_frequency_ghz={d: 1.0 for d in CONTROLLED_DOMAINS},
        issued_by_domain={d: 0 for d in CONTROLLED_DOMAINS},
        branch_mispredict_rate=0.0,
        l1d_miss_rate=0.0,
        l2_miss_rate=0.0,
        sync_deferral_rate=0.0,
    )


def _fail_on_pid(job):
    if job.scheme == "pid":
        raise RuntimeError(f"boom on {job.job_id}")
    return _fake_result(job)


def _sleep_on_pid(job):
    if job.scheme == "pid":
        time.sleep(10.0)
    return _fake_result(job)


def _jobs(schemes, benchmark="adpcm-encode", **kwargs):
    return [
        SweepJob.make(benchmark, scheme=scheme, **kwargs)
        for scheme in schemes
    ]


class TestParity:
    """Pool, serial, and direct execution must agree exactly."""

    def test_serial_engine_matches_direct_run(self):
        job = SweepJob.make("gzip", scheme="adaptive", max_instructions=2000)
        direct = run_experiment("gzip", scheme="adaptive", max_instructions=2000)
        (outcome,) = SweepEngine().run([job])
        assert outcome.ok and not outcome.from_cache
        assert outcome.result.energy.total == direct.energy.total
        assert outcome.result.time_ns == direct.time_ns
        assert outcome.result.transitions == direct.transitions

    def test_pool_matches_serial(self):
        jobs = _jobs(
            ("full-speed", "adaptive"), max_instructions=2000
        ) + _jobs(("full-speed", "adaptive"), benchmark="swim",
                  max_instructions=2000)
        serial = SweepEngine(EngineConfig(workers=1)).run(jobs)
        pooled = SweepEngine(EngineConfig(workers=2)).run(jobs)
        assert len(serial) == len(pooled) == 4
        for s, p in zip(serial, pooled):
            assert p.job.job_id == s.job.job_id  # input order preserved
            assert p.result.energy.total == s.result.energy.total
            assert p.result.time_ns == s.result.time_ns
            assert p.result.transitions == s.result.transitions


class TestRobustness:
    def test_serial_retry_then_success(self):
        calls = {"n": 0}

        def flaky(job):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return _fake_result(job)

        engine = SweepEngine(EngineConfig(retries=1), runner=flaky)
        (outcome,) = engine.run(_jobs(("adaptive",)))
        assert outcome.ok
        assert outcome.attempts == 2
        assert engine.telemetry.counters[tm.JOB_RETRIED] == 1

    def test_pool_failure_is_retried_then_surfaced_without_aborting(self):
        jobs = _jobs(("full-speed", "adaptive", "pid"))
        engine = SweepEngine(
            EngineConfig(workers=2, retries=1), runner=_fail_on_pid
        )
        outcomes = engine.run(jobs)
        by_scheme = {o.job.scheme: o for o in outcomes}
        assert by_scheme["full-speed"].ok and by_scheme["adaptive"].ok
        failed = by_scheme["pid"]
        assert not failed.ok
        assert failed.attempts == 2
        assert "boom" in failed.error
        assert engine.telemetry.counters[tm.JOB_RETRIED] == 1
        assert engine.telemetry.counters[tm.JOB_FAILED] == 1
        kinds = [e.kind for e in engine.telemetry.events]
        assert tm.JOB_FAILED in kinds and tm.SWEEP_FINISHED in kinds

    def test_timeout_is_enforced_retried_and_surfaced(self):
        jobs = _jobs(("adaptive", "pid"))
        engine = SweepEngine(
            EngineConfig(retries=1, timeout_s=0.2), runner=_sleep_on_pid
        )
        started = time.monotonic()
        outcomes = engine.run(jobs)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0  # two 0.2 s attempts, not two 10 s sleeps
        by_scheme = {o.job.scheme: o for o in outcomes}
        assert by_scheme["adaptive"].ok
        assert not by_scheme["pid"].ok
        assert "JobTimeoutError" in by_scheme["pid"].error
        assert engine.telemetry.counters[tm.JOB_RETRIED] == 1

    def test_pool_timeout_in_worker(self):
        jobs = _jobs(("full-speed", "adaptive", "pid"))
        engine = SweepEngine(
            EngineConfig(workers=2, retries=0, timeout_s=0.2),
            runner=_sleep_on_pid,
        )
        outcomes = engine.run(jobs)
        by_scheme = {o.job.scheme: o for o in outcomes}
        assert by_scheme["full-speed"].ok and by_scheme["adaptive"].ok
        assert not by_scheme["pid"].ok
        assert "timeout" in by_scheme["pid"].error.lower()

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(
            "repro.engine.scheduler.concurrent.futures.ProcessPoolExecutor",
            refuse,
        )
        engine = SweepEngine(EngineConfig(workers=4), runner=_fake_result)
        outcomes = engine.run(_jobs(("full-speed", "adaptive")))
        assert all(o.ok for o in outcomes)
        kinds = [e.kind for e in engine.telemetry.events]
        assert tm.POOL_UNAVAILABLE in kinds

    def test_results_raises_on_exhausted_job(self):
        engine = SweepEngine(EngineConfig(retries=0), runner=_fail_on_pid)
        with pytest.raises(RuntimeError, match="pid"):
            engine.results(_jobs(("adaptive", "pid")))


class TestCacheIntegration:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        jobs = _jobs(("full-speed", "adaptive"), max_instructions=1500)
        config = EngineConfig(workers=1, cache_dir=str(tmp_path))
        first = SweepEngine(config).run(jobs)
        engine = SweepEngine(config)
        second = engine.run(jobs)
        assert all(o.from_cache for o in second)
        assert engine.telemetry.counters[tm.JOB_CACHE_HIT] == len(jobs)
        assert engine.telemetry.counters[tm.JOB_STARTED] == 0
        for a, b in zip(first, second):
            assert b.result.energy.total == pytest.approx(a.result.energy.total)
            assert b.result.time_ns == pytest.approx(a.result.time_ns)
            assert b.result.transitions == a.result.transitions

    def test_failed_jobs_are_not_cached(self, tmp_path):
        config = EngineConfig(retries=0, cache_dir=str(tmp_path))
        engine = SweepEngine(config, runner=_fail_on_pid)
        (outcome,) = engine.run(_jobs(("pid",)))
        assert not outcome.ok
        assert engine.cache.stores == 0


class TestRunSweepConvenience:
    def test_keyword_overrides(self):
        outcomes = run_sweep(
            _jobs(("adaptive",), max_instructions=1500), workers=1
        )
        assert outcomes[0].ok

    def test_config_and_overrides_conflict(self):
        with pytest.raises(TypeError):
            run_sweep([], config=EngineConfig(), workers=2)


class TestTimeoutHelper:
    def test_job_timeout_error_message_names_job(self):
        job = SweepJob.make("gzip", scheme="pid")
        engine = SweepEngine(
            EngineConfig(retries=0, timeout_s=0.05), runner=_sleep_on_pid
        )
        (outcome,) = engine.run([job])
        assert "gzip/pid" in outcome.error
        assert isinstance(JobTimeoutError("x"), Exception)


def _square(value):
    return value * value


def _raise_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


class TestPooledMap:
    """The generic process-pool map shared with statcheck's incremental
    analyzer: input-order results, serial paths, and error propagation."""

    def test_serial_path_preserves_order(self):
        from repro.engine.scheduler import pooled_map

        assert pooled_map(_square, [3, 1, 2], workers=1) == [9, 1, 4]

    def test_single_item_stays_serial_even_with_workers(self):
        from repro.engine.scheduler import pooled_map

        assert pooled_map(_square, [7], workers=8) == [49]

    def test_pooled_results_come_back_in_input_order(self):
        from repro.engine.scheduler import pooled_map

        items = list(range(20))
        assert pooled_map(_square, items, workers=4) == [
            i * i for i in items
        ]

    def test_empty_input(self):
        from repro.engine.scheduler import pooled_map

        assert pooled_map(_square, [], workers=4) == []

    def test_exceptions_propagate_serially(self):
        from repro.engine.scheduler import pooled_map

        with pytest.raises(ValueError, match="three"):
            pooled_map(_raise_on_three, [1, 2, 3], workers=1)

    def test_exceptions_propagate_from_the_pool(self):
        from repro.engine.scheduler import pooled_map

        with pytest.raises(ValueError, match="three"):
            pooled_map(_raise_on_three, [1, 2, 3, 4], workers=2)

    def test_broken_pool_falls_back_to_serial(self, monkeypatch):
        import repro.engine.scheduler as sched

        class _NoPool:
            def __init__(self, *args, **kwargs):
                raise OSError("no process pool on this platform")

        monkeypatch.setattr(
            sched.concurrent.futures, "ProcessPoolExecutor", _NoPool
        )
        assert sched.pooled_map(_square, [1, 2, 3], workers=4) == [1, 4, 9]
