"""Tests for the engine telemetry stream."""

import io
import json

from repro.engine import telemetry as tm


class TestRunTelemetry:
    def test_counters_track_job_events(self):
        t = tm.RunTelemetry()
        t.emit(tm.SWEEP_STARTED, total_jobs=3)
        t.emit(tm.JOB_STARTED, "a/adaptive", attempt=1)
        t.emit(tm.JOB_FINISHED, "a/adaptive", wall_s=0.5)
        t.emit(tm.JOB_CACHE_HIT, "b/adaptive")
        t.emit(tm.JOB_RETRIED, "c/pid", error="boom")
        t.emit(tm.JOB_FAILED, "c/pid", error="boom")
        t.emit(tm.SWEEP_FINISHED)
        assert t.counters[tm.JOB_FINISHED] == 1
        assert t.counters[tm.JOB_CACHE_HIT] == 1
        assert t.counters[tm.JOB_RETRIED] == 1
        assert t.counters[tm.JOB_FAILED] == 1
        assert t.completed_jobs == 3

    def test_summary_and_throughput(self):
        t = tm.RunTelemetry()
        t.emit(tm.SWEEP_STARTED)
        t.emit(tm.JOB_FINISHED, "x/adaptive")
        t.emit(tm.SWEEP_FINISHED)
        summary = t.summary()
        assert summary["jobs_run"] == 1
        assert summary["failures"] == 0
        assert summary["wall_s"] >= 0.0
        assert summary["jobs_per_s"] > 0.0

    def test_listeners_receive_every_event(self):
        seen = []
        t = tm.RunTelemetry(listeners=[seen.append])
        t.emit(tm.JOB_STARTED, "x/pid")
        t.emit(tm.JOB_FINISHED, "x/pid")
        assert [e.kind for e in seen] == [tm.JOB_STARTED, tm.JOB_FINISHED]
        assert seen[0].job_id == "x/pid"


class TestJsonlEventLog:
    def test_one_json_object_per_line(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = tm.JsonlEventLog(path)
        t = tm.RunTelemetry(listeners=[log])
        t.emit(tm.SWEEP_STARTED, total_jobs=1)
        t.emit(tm.JOB_FINISHED, "gzip/adaptive", wall_s=1.25, attempts=1)
        t.emit(tm.SWEEP_FINISHED)
        lines = [
            json.loads(line)
            for line in open(path).read().splitlines()
        ]
        assert [rec["event"] for rec in lines] == [
            tm.SWEEP_STARTED, tm.JOB_FINISHED, tm.SWEEP_FINISHED,
        ]
        assert lines[1]["job"] == "gzip/adaptive"
        assert lines[1]["wall_s"] == 1.25
        assert all("timestamp" in rec for rec in lines)

    def test_reopening_truncates(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        first = tm.JsonlEventLog(path)
        first(tm.TelemetryEvent(kind=tm.SWEEP_STARTED, timestamp=0.0))
        # a new sweep starts a fresh log; truncation is lazy (no file
        # I/O in the constructor), so it lands with the first event
        second = tm.JsonlEventLog(path)
        assert open(path).read() != ""  # untouched until an event arrives
        second(tm.TelemetryEvent(kind=tm.SWEEP_FINISHED, timestamp=1.0))
        lines = [json.loads(l) for l in open(path).read().splitlines()]
        assert [rec["event"] for rec in lines] == [tm.SWEEP_FINISHED]


class TestProgressReporter:
    def test_reports_terminal_events_only(self):
        stream = io.StringIO()
        reporter = tm.ProgressReporter(total=2, stream=stream)
        t = tm.RunTelemetry(listeners=[reporter])
        t.emit(tm.JOB_STARTED, "gzip/adaptive")
        t.emit(tm.JOB_FINISHED, "gzip/adaptive", wall_s=0.75)
        t.emit(tm.JOB_CACHE_HIT, "swim/pid")
        out = stream.getvalue()
        assert "[1/2] gzip/adaptive: 0.75s" in out
        assert "[2/2] swim/pid: cached" in out

    def test_reports_failures(self):
        stream = io.StringIO()
        reporter = tm.ProgressReporter(total=1, stream=stream)
        reporter(
            tm.TelemetryEvent(
                kind=tm.JOB_FAILED, timestamp=0.0,
                job_id="mcf/pid", data={"error": "RuntimeError: boom"},
            )
        )
        assert "FAILED: RuntimeError: boom" in stream.getvalue()
