"""Tests for graceful engine shutdown (drain semantics)."""

import os
import signal
import threading
import time

import pytest

from repro.engine import telemetry as tm
from repro.engine.jobs import SweepJob
from repro.engine.scheduler import (
    EngineConfig,
    SweepEngine,
    shutdown_on_signals,
)
from repro.mcd.processor import SimulationResult


def make_jobs(n):
    return [
        SweepJob.make("adpcm-encode", seed=seed, max_instructions=1500)
        for seed in range(1, n + 1)
    ]


def _slow_runner(job):
    """Module-level (picklable) runner: sleep, then delegate."""
    from repro.engine.jobs import run_job

    time.sleep(0.2)
    return run_job(job)


class TestSerialDrain:
    def test_shutdown_mid_sweep_cancels_remaining(self):
        engine = SweepEngine(EngineConfig(workers=1))
        calls = {"n": 0}

        def runner(job):
            calls["n"] += 1
            if calls["n"] == 2:
                engine.request_shutdown()
            from repro.engine.jobs import run_job

            return run_job(job)

        engine.runner = runner
        jobs = make_jobs(5)
        outcomes = engine.run(jobs)

        # every job yields an outcome, in input order
        assert len(outcomes) == len(jobs)
        assert [o.job.seed for o in outcomes] == [1, 2, 3, 4, 5]
        # the in-flight job finished; everything after was cancelled
        assert [o.ok for o in outcomes] == [True, True, False, False, False]
        assert all(
            "cancelled" in o.error for o in outcomes if not o.ok
        )
        summary = engine.telemetry.summary()
        assert summary["cancelled"] == 3
        assert summary["jobs_run"] == 2
        assert summary["failures"] == 0
        # the sweep still closed out its telemetry
        kinds = [e.kind for e in engine.telemetry.events]
        assert kinds[-1] == tm.SWEEP_FINISHED
        assert tm.SHUTDOWN_REQUESTED in kinds

    def test_shutdown_before_run_cancels_everything(self):
        engine = SweepEngine(EngineConfig(workers=1))
        engine.request_shutdown()
        outcomes = engine.run(make_jobs(3))
        assert len(outcomes) == 3
        assert all(not o.ok for o in outcomes)
        assert engine.telemetry.summary()["cancelled"] == 3

    def test_no_retries_after_shutdown(self):
        engine = SweepEngine(EngineConfig(workers=1, retries=3))

        def runner(job):
            engine.request_shutdown()
            raise RuntimeError("fault during drain")

        engine.runner = runner
        outcomes = engine.run(make_jobs(1))
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1
        assert engine.telemetry.counters[tm.JOB_RETRIED] == 0

    def test_cancelled_jobs_flush_cache_of_finished_ones(self, tmp_path):
        engine = SweepEngine(EngineConfig(workers=1, cache_dir=str(tmp_path)))
        calls = {"n": 0}

        def runner(job):
            calls["n"] += 1
            if calls["n"] == 1:
                engine.request_shutdown()
            from repro.engine.jobs import run_job

            return run_job(job)

        engine.runner = runner
        outcomes = engine.run(make_jobs(3))
        assert outcomes[0].ok and not outcomes[1].ok
        # the finished job's result landed in the cache before the drain
        fresh = SweepEngine(EngineConfig(workers=1, cache_dir=str(tmp_path)))
        cached = fresh.run([outcomes[0].job])
        assert cached[0].from_cache

    def test_request_shutdown_is_idempotent(self):
        engine = SweepEngine(EngineConfig())
        engine.request_shutdown()
        engine.request_shutdown()
        events = [e for e in engine.telemetry.events
                  if e.kind == tm.SHUTDOWN_REQUESTED]
        assert len(events) == 1
        assert engine.shutdown_requested


class TestPooledDrain:
    def test_pooled_shutdown_drains_in_flight_and_cancels_queued(self):
        engine = SweepEngine(
            EngineConfig(workers=2, retries=0), runner=_slow_runner
        )
        jobs = make_jobs(8)
        timer = threading.Timer(0.3, engine.request_shutdown)
        timer.start()
        try:
            outcomes = engine.run(jobs)
        finally:
            timer.cancel()
        assert len(outcomes) == len(jobs)
        finished = sum(1 for o in outcomes if o.ok)
        cancelled = sum(
            1 for o in outcomes if not o.ok and "cancelled" in (o.error or "")
        )
        assert finished + cancelled == len(jobs)
        assert finished >= 1  # in-flight jobs were drained, not killed
        assert cancelled >= 1  # queued jobs were cancelled, not run
        summary = engine.telemetry.summary()
        assert summary["cancelled"] == cancelled
        assert summary["failures"] == 0


class TestSignalHandling:
    def test_signal_requests_shutdown_without_raising(self):
        engine = SweepEngine(EngineConfig())
        with shutdown_on_signals(engine):
            os.kill(os.getpid(), signal.SIGINT)
            # handler runs on this (main) thread at the next bytecode
            time.sleep(0.01)
            assert engine.shutdown_requested

    def test_second_signal_falls_through_to_previous_handler(self):
        engine = SweepEngine(EngineConfig())
        with pytest.raises(KeyboardInterrupt):
            with shutdown_on_signals(engine):
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.01)
                os.kill(os.getpid(), signal.SIGINT)
                time.sleep(0.01)

    def test_previous_handlers_restored_on_exit(self):
        engine = SweepEngine(EngineConfig())
        before_int = signal.getsignal(signal.SIGINT)
        before_term = signal.getsignal(signal.SIGTERM)
        with shutdown_on_signals(engine):
            assert signal.getsignal(signal.SIGINT) is not before_int
        assert signal.getsignal(signal.SIGINT) is before_int
        assert signal.getsignal(signal.SIGTERM) is before_term

    def test_noop_off_main_thread(self):
        engine = SweepEngine(EngineConfig())
        before = signal.getsignal(signal.SIGINT)
        seen = {}

        def worker():
            with shutdown_on_signals(engine):
                seen["handler"] = signal.getsignal(signal.SIGINT)

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["handler"] is before  # unchanged: no-op off main thread

    def test_outcome_is_jobout_with_cancelled_error_text(self):
        """Sanity on the outcome shape downstream consumers rely on."""
        engine = SweepEngine(EngineConfig())
        engine.request_shutdown()
        (outcome,) = engine.run(make_jobs(1))
        assert outcome.result is None
        assert isinstance(outcome.job, SweepJob)
        assert outcome.error == "cancelled: shutdown requested"
        assert not isinstance(outcome.result, SimulationResult)
