"""Engine observability: metrics instruments and cross-process spans.

The cross-process tests are the acceptance check for span stitching: a
pooled sweep's worker spans -- produced in pool processes -- must carry
the submitting run's trace ID and parent back into the submitting
process's recorder.
"""

from __future__ import annotations

import os

import pytest

from repro.engine.jobs import SweepJob
from repro.engine.scheduler import EngineConfig, SweepEngine
from repro.mcd.domains import CONTROLLED_DOMAINS
from repro.mcd.processor import SimulationHistory, SimulationResult
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanContext, SpanRecorder
from repro.power.model import EnergyAccount


def _fake_result(job):
    return SimulationResult(
        benchmark=job.benchmark.name,
        scheme=job.scheme,
        time_ns=1.0,
        instructions=1,
        energy=EnergyAccount(),
        history=SimulationHistory(),
        transitions={d: 0 for d in CONTROLLED_DOMAINS},
        mean_frequency_ghz={d: 1.0 for d in CONTROLLED_DOMAINS},
        issued_by_domain={d: 0 for d in CONTROLLED_DOMAINS},
        branch_mispredict_rate=0.0,
        l1d_miss_rate=0.0,
        l2_miss_rate=0.0,
        sync_deferral_rate=0.0,
    )


def _fail_on_pid(job):
    if job.scheme == "pid":
        raise RuntimeError(f"boom on {job.job_id}")
    return _fake_result(job)


def _jobs(schemes, **kwargs):
    return [
        SweepJob.make("adpcm-encode", scheme=scheme, **kwargs)
        for scheme in schemes
    ]


# -- metrics -----------------------------------------------------------


class TestEngineMetrics:
    def test_outcome_counters_and_gauges(self):
        metrics = MetricsRegistry()
        engine = SweepEngine(
            EngineConfig(retries=0),
            runner=_fail_on_pid,
            metrics=metrics,
        )
        engine.run(_jobs(("adaptive", "pid", "full-speed")))
        snap = metrics.snapshot()
        assert snap["counters"]['repro_engine_jobs_total{outcome="finished"}'] == 2.0
        assert snap["counters"]['repro_engine_jobs_total{outcome="failed"}'] == 1.0
        # all accounted for: nothing left pending or in flight
        assert snap["gauges"]["repro_engine_pending_jobs"] == 0.0
        assert snap["gauges"]["repro_engine_inflight_jobs"] == 0.0
        assert snap["gauges"]["repro_engine_cache_hit_ratio"] == 0.0

    def test_retry_counter(self):
        metrics = MetricsRegistry()
        attempts = {"n": 0}

        def flaky(job):
            attempts["n"] += 1
            if attempts["n"] == 1:
                raise RuntimeError("first try fails")
            return _fake_result(job)

        engine = SweepEngine(
            EngineConfig(retries=1), runner=flaky, metrics=metrics
        )
        (outcome,) = engine.run(_jobs(("adaptive",)))
        assert outcome.ok
        snap = metrics.snapshot()
        assert snap["counters"]["repro_engine_retries_total"] == 1.0

    def test_cache_hits_counted_and_ratio_set(self, tmp_path):
        metrics = MetricsRegistry()
        config = EngineConfig(cache_dir=str(tmp_path))
        jobs = _jobs(("adaptive",), max_instructions=2000)
        SweepEngine(config).run(jobs)  # warm, unmetered
        engine = SweepEngine(config, metrics=metrics)
        outcomes = engine.run(jobs)
        assert outcomes[0].from_cache
        snap = metrics.snapshot()
        assert snap["counters"]['repro_engine_jobs_total{outcome="cache_hit"}'] == 1.0
        assert snap["gauges"]["repro_engine_cache_hit_ratio"] == 1.0

    def test_instr_rate_gauge_set_after_real_run(self):
        metrics = MetricsRegistry()
        engine = SweepEngine(metrics=metrics)
        engine.run(_jobs(("adaptive",), max_instructions=2000))
        snap = metrics.snapshot()
        assert snap["gauges"]["repro_run_instr_per_s"] > 0.0

    def test_disabled_metrics_resolve_no_instruments(self):
        engine = SweepEngine()
        assert engine._m_jobs is None
        assert engine._m_inflight is None
        engine.run(_jobs(("adaptive",)))  # and running works without them


# -- span stitching ----------------------------------------------------


class TestSpanStitching:
    def test_serial_sweep_produces_sweep_and_job_spans(self):
        tracer = SpanRecorder()
        engine = SweepEngine(runner=_fake_result, tracer=tracer)
        engine.run(_jobs(("adaptive", "full-speed")))
        spans = tracer.spans()
        sweep = next(s for s in spans if s["name"] == "sweep")
        jobs = [s for s in spans if s["name"].startswith("job:")]
        assert len(jobs) == 2
        for job_span in jobs:
            assert job_span["trace_id"] == sweep["trace_id"]
            assert job_span["parent_id"] == sweep["span_id"]

    def test_trace_parent_roots_the_sweep_span(self):
        tracer = SpanRecorder()
        root = tracer.start("submission")
        engine = SweepEngine(
            runner=_fake_result, tracer=tracer, trace_parent=root.context
        )
        engine.run(_jobs(("adaptive",)))
        root.end()
        sweep = next(s for s in tracer.spans() if s["name"] == "sweep")
        assert sweep["trace_id"] == root.trace_id
        assert sweep["parent_id"] == root.span_id

    def test_pooled_worker_spans_carry_submitted_trace_ids(self):
        """Acceptance: worker spans from pool processes stitch to the
        per-job trace IDs the submitting process handed out."""
        tracer = SpanRecorder()
        roots = {
            scheme: tracer.start(f"request:{scheme}")
            for scheme in ("adaptive", "full-speed")
        }
        jobs = [
            SweepJob.make(
                "adpcm-encode",
                scheme=scheme,
                max_instructions=1000,
                span=root.context,
            )
            for scheme, root in roots.items()
        ]
        engine = SweepEngine(EngineConfig(workers=2), tracer=tracer)
        outcomes = engine.run(jobs)
        assert all(o.ok for o in outcomes)
        for scheme, root in roots.items():
            root.end()
            spans = tracer.spans(root.trace_id)
            worker = next(
                s for s in spans if s["name"] == f"job:adpcm-encode/{scheme}"
            )
            assert worker["trace_id"] == root.trace_id
            assert worker["parent_id"] == root.span_id
            # produced in a pool process, not this one
            assert worker["attrs"]["pid"] != os.getpid()
            assert worker["attrs"]["instructions"] > 0
            # and the tree nests it under the submission root
            (tree,) = tracer.tree(root.trace_id)
            assert tree["span"]["name"] == f"request:{scheme}"
            assert any(
                child["span"]["span_id"] == worker["span_id"]
                for child in tree["children"]
            )

    def test_job_carried_span_beats_sweep_span(self):
        tracer = SpanRecorder()
        request = tracer.start("request")
        carried = _jobs(("adaptive",))[0]
        carried = SweepJob.make(
            "adpcm-encode", scheme="adaptive", span=request.context
        )
        plain = SweepJob.make("adpcm-encode", scheme="full-speed")
        engine = SweepEngine(runner=_fake_result, tracer=tracer)
        engine.run([carried, plain])
        request.end()
        sweep = next(s for s in tracer.spans() if s["name"] == "sweep")
        carried_span = next(
            s for s in tracer.spans()
            if s["name"] == "job:adpcm-encode/adaptive"
        )
        plain_span = next(
            s for s in tracer.spans()
            if s["name"] == "job:adpcm-encode/full-speed"
        )
        assert carried_span["trace_id"] == request.trace_id
        assert carried_span["parent_id"] == request.span_id
        assert plain_span["trace_id"] == sweep["trace_id"]
        assert plain_span["parent_id"] == sweep["span_id"]

    def test_cache_hits_emit_spans_too(self, tmp_path):
        tracer = SpanRecorder()
        config = EngineConfig(cache_dir=str(tmp_path))
        jobs = _jobs(("adaptive",), max_instructions=2000)
        SweepEngine(config).run(jobs)
        engine = SweepEngine(config, tracer=tracer)
        engine.run(jobs)
        hit = next(
            s for s in tracer.spans() if s["name"].startswith("job:")
        )
        assert hit["attrs"]["cache"] == "hit"

    def test_span_field_stays_out_of_the_cache_key(self):
        job = SweepJob.make("adpcm-encode", scheme="adaptive")
        spanned = SweepJob.make(
            "adpcm-encode",
            scheme="adaptive",
            span=SpanContext(trace_id="t" * 32, span_id="s" * 16),
        )
        assert job.canonical_json() == spanned.canonical_json()

    def test_disabled_tracer_ships_no_span_parents(self):
        engine = SweepEngine(runner=_fake_result)
        job = SweepJob.make(
            "adpcm-encode",
            scheme="adaptive",
            span=SpanContext(trace_id="t" * 32, span_id="s" * 16),
        )
        # tracing off: even a job-carried context is not propagated
        assert engine._span_parent_dict(job) is None
        (outcome,) = engine.run([job])
        assert outcome.ok
