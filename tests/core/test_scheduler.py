"""Unit tests for the action scheduler (paper Section 3.1 reconciliation)."""

import pytest

from repro.core.scheduler import ActionScheduler


def _sched(ts=172.0, combine=True):
    return ActionScheduler(switching_time_ns=ts, combine_actions=combine)


class TestSingleTriggers:
    def test_level_only(self):
        action = _sched().reconcile(0.0, 1, 0)
        assert action.steps == 1

    def test_slope_only_down(self):
        action = _sched().reconcile(0.0, 0, -1)
        assert action.steps == -1

    def test_no_triggers(self):
        assert _sched().reconcile(0.0, 0, 0) is None


class TestReconciliation:
    def test_identical_triggers_combine_to_double_step(self):
        sched = _sched()
        action = sched.reconcile(0.0, 1, 1)
        assert action.steps == 2
        assert sched.combined == 1

    def test_identical_down_triggers(self):
        assert _sched().reconcile(0.0, -1, -1).steps == -2

    def test_opposite_triggers_cancel(self):
        sched = _sched()
        assert sched.reconcile(0.0, 1, -1) is None
        assert sched.cancellations == 1
        assert sched.actions == 0

    def test_serialize_mode_takes_level_action(self):
        sched = _sched(combine=False)
        action = sched.reconcile(0.0, 1, 1)
        assert action.steps == 1


class TestSwitchingTime:
    def test_busy_during_switch(self):
        sched = _sched(ts=172.0)
        action = sched.reconcile(0.0, 1, 0)
        assert action.completes_ns == pytest.approx(172.0)
        assert sched.busy(100.0)
        assert not sched.busy(172.0)

    def test_double_step_takes_double_time(self):
        sched = _sched(ts=172.0)
        action = sched.reconcile(0.0, -1, -1)
        assert action.completes_ns == pytest.approx(344.0)

    def test_zero_switching_time_never_busy(self):
        sched = _sched(ts=0.0)
        sched.reconcile(0.0, 1, 0)
        assert not sched.busy(0.0)


class TestBookkeeping:
    def test_action_count(self):
        sched = _sched()
        sched.reconcile(0.0, 1, 0)
        sched.reconcile(500.0, 0, -1)
        assert sched.actions == 2

    def test_reset(self):
        sched = _sched()
        sched.reconcile(0.0, 1, 1)
        sched.reset()
        assert sched.actions == 0
        assert not sched.busy(0.0)

    def test_rejects_invalid_triggers(self):
        with pytest.raises(ValueError):
            _sched().reconcile(0.0, 2, 0)

    def test_rejects_negative_switching_time(self):
        with pytest.raises(ValueError):
            ActionScheduler(switching_time_ns=-1.0)
