"""Unit tests for queue-signal extraction."""

import pytest

from repro.core.signals import SignalMonitor


class TestLevelSignal:
    def test_level_relative_to_reference(self):
        mon = SignalMonitor(q_ref=4)
        assert mon.sample(7).level == pytest.approx(3.0)
        assert mon.sample(2).level == pytest.approx(-2.0)

    def test_level_zero_at_reference(self):
        assert SignalMonitor(4).sample(4).level == 0.0


class TestSlopeSignal:
    def test_first_sample_has_zero_slope(self):
        assert SignalMonitor(4).sample(9).slope == 0.0

    def test_slope_is_difference_of_consecutive_samples(self):
        mon = SignalMonitor(4)
        mon.sample(3)
        assert mon.sample(8).slope == pytest.approx(5.0)
        assert mon.sample(6).slope == pytest.approx(-2.0)

    def test_steady_occupancy_zero_slope(self):
        mon = SignalMonitor(4)
        mon.sample(5)
        for _ in range(5):
            assert mon.sample(5).slope == 0.0


class TestReset:
    def test_reset_forgets_previous(self):
        mon = SignalMonitor(4)
        mon.sample(10)
        mon.reset()
        assert mon.sample(3).slope == 0.0


class TestValidation:
    def test_rejects_negative_qref(self):
        with pytest.raises(ValueError):
            SignalMonitor(-1)

    def test_rejects_negative_occupancy(self):
        with pytest.raises(ValueError):
            SignalMonitor(4).sample(-1)

    def test_sample_carries_occupancy(self):
        assert SignalMonitor(4).sample(7).occupancy == 7
