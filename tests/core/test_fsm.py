"""Unit tests for the per-signal time-delay FSM (paper Figures 3-4)."""

import pytest

from repro.core.fsm import FsmState, TimeDelayFsm


def _fsm(delay=4.0, dw=1.0, **kw):
    return TimeDelayFsm(delay=delay, deviation_window=dw, **kw)


class TestDeviationWindow:
    def test_inside_window_stays_waiting(self):
        fsm = _fsm(dw=1.0)
        for signal in (0.0, 0.5, -0.5, 1.0, -1.0):
            assert fsm.step(signal, 1.0) == 0
            assert fsm.state is FsmState.WAIT

    def test_outside_window_starts_counting(self):
        fsm = _fsm(delay=100.0, dw=1.0)
        fsm.step(2.0, 1.0)
        assert fsm.state is FsmState.COUNT_UP
        fsm.reset()
        fsm.step(-2.0, 1.0)
        assert fsm.state is FsmState.COUNT_DOWN

    def test_zero_window_any_nonzero_counts(self):
        fsm = _fsm(delay=100.0, dw=0.0)
        fsm.step(0.5, 1.0)
        assert fsm.state is FsmState.COUNT_UP

    def test_boundary_is_inside(self):
        """The window is closed: |signal| == DW does not count."""
        fsm = _fsm(dw=1.0)
        fsm.step(1.0, 1.0)
        assert fsm.state is FsmState.WAIT


class TestResettableDelay:
    def test_returning_inside_window_resets_counter(self):
        fsm = _fsm(delay=3.0, dw=1.0, signal_scaled=False)
        fsm.step(2.0, 1.0)
        fsm.step(2.0, 1.0)
        fsm.step(0.0, 1.0)  # back inside: reset
        assert fsm.counter == 0.0
        assert fsm.state is FsmState.WAIT
        # needs the full delay again
        assert fsm.step(2.0, 1.0) == 0
        assert fsm.step(2.0, 1.0) == 0
        assert fsm.step(2.0, 1.0) == 1

    def test_crossing_sides_restarts_count(self):
        fsm = _fsm(delay=3.0, dw=1.0, signal_scaled=False, freq_scaled_down=False)
        fsm.step(2.0, 1.0)
        fsm.step(2.0, 1.0)
        fsm.step(-2.0, 1.0)  # crossed: restart counting down
        assert fsm.state is FsmState.COUNT_DOWN
        assert fsm.counter == pytest.approx(1.0)

    def test_trigger_after_delay_and_reset(self):
        fsm = _fsm(delay=3.0, dw=1.0, signal_scaled=False)
        assert fsm.step(2.0, 1.0) == 0
        assert fsm.step(2.0, 1.0) == 0
        assert fsm.step(2.0, 1.0) == 1
        assert fsm.state is FsmState.WAIT
        assert fsm.counter == 0.0

    def test_down_trigger(self):
        fsm = _fsm(delay=2.0, dw=1.0, signal_scaled=False, freq_scaled_down=False)
        assert fsm.step(-2.0, 1.0) == 0
        assert fsm.step(-2.0, 1.0) == -1


class TestSignalScaledDelay:
    def test_larger_signal_triggers_sooner(self):
        """Counter increments by |signal|: the eq-5 scaling emulation."""
        slow = _fsm(delay=8.0, dw=1.0, signal_scaled=True)
        fast = _fsm(delay=8.0, dw=1.0, signal_scaled=True)
        slow_steps = fast_steps = 0
        while slow.step(2.0, 1.0) == 0:
            slow_steps += 1
        while fast.step(8.0, 1.0) == 0:
            fast_steps += 1
        assert fast_steps < slow_steps

    def test_unscaled_counts_samples(self):
        fsm = _fsm(delay=5.0, dw=1.0, signal_scaled=False)
        triggers = [fsm.step(3.0, 1.0) for _ in range(5)]
        assert triggers == [0, 0, 0, 0, 1]


class TestFrequencyScaledCountDown:
    def test_low_frequency_slows_count_down(self):
        """At f_hat = 0.5 the count-down delay is 4x longer (1/f^2)."""

        def samples_to_trigger(f_rel):
            fsm = _fsm(delay=4.0, dw=1.0, signal_scaled=False, freq_scaled_down=True)
            for n in range(1, 200):
                if fsm.step(-2.0, f_rel) != 0:
                    return n
            raise AssertionError("never triggered")

        assert samples_to_trigger(0.5) == 4 * samples_to_trigger(1.0)

    def test_count_up_not_frequency_scaled(self):
        """Only the count-*down* delay is scaled: scaling up must stay fast
        even at low frequency."""
        fsm = _fsm(delay=4.0, dw=1.0, signal_scaled=False, freq_scaled_down=True)
        steps = 0
        while fsm.step(2.0, 0.25) == 0 and steps < 100:
            steps += 1
        assert steps == 3  # same as at full frequency

    def test_disabled_scaling(self):
        fsm = _fsm(delay=4.0, dw=1.0, signal_scaled=False, freq_scaled_down=False)
        steps = 0
        while fsm.step(-2.0, 0.25) == 0 and steps < 100:
            steps += 1
        assert steps == 3


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TimeDelayFsm(delay=0.0, deviation_window=1.0)
        with pytest.raises(ValueError):
            TimeDelayFsm(delay=1.0, deviation_window=-1.0)
        with pytest.raises(ValueError):
            TimeDelayFsm(delay=1.0, deviation_window=0.0, scale=0.0)

    def test_rejects_bad_frequency(self):
        fsm = _fsm()
        with pytest.raises(ValueError):
            fsm.step(2.0, 0.0)
        with pytest.raises(ValueError):
            fsm.step(2.0, 1.5)
