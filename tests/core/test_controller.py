"""Unit tests for the assembled adaptive DVFS controller.

These drive the controller with synthetic occupancy streams at the 4 ns
sampling period and assert the paper's described behaviours: inactivity on
steady workloads, downward scaling on emptiness, fast reaction to severe
swings, and the hold during physical switching.
"""

import pytest

from repro.core.config import AdaptiveConfig
from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import DomainId, MachineConfig


def _controller(**overrides):
    machine = MachineConfig()
    config = AdaptiveConfig(q_ref=4, **overrides)
    return AdaptiveDvfsController(DomainId.FP, config, machine), machine


def _drive(controller, occupancies, freq=1.0, t0=0.0, dt=4.0):
    """Feed a list of occupancy samples; return the commands issued."""
    commands = []
    t = t0
    for occ in occupancies:
        cmd = controller.observe(t, occ, freq)
        if cmd is not None:
            commands.append((t, cmd))
        t += dt
    return commands


class TestInactivity:
    def test_steady_at_reference_never_acts(self):
        controller, _ = _controller()
        commands = _drive(controller, [4] * 2000)
        assert commands == []

    def test_small_wobble_inside_windows_never_acts(self):
        """Occupancy oscillating within the deviation window is noise."""
        controller, _ = _controller()
        # level in {-1, 0, +1}: inside DW_level; slope alternates +-1...
        # slope DW is 0, so slope +-1 counts -- but it alternates sign each
        # sample, restarting the count each time: no action with t_l0 = 8.
        wobble = [4, 5, 4, 5, 4, 5] * 300
        commands = _drive(controller, wobble)
        assert commands == []


class TestScalingDown:
    def test_empty_queue_steps_down(self):
        controller, _ = _controller()
        commands = _drive(controller, [0] * 500)
        assert commands
        assert all(cmd.steps < 0 for _, cmd in commands)

    def test_first_reaction_within_scaled_delay(self):
        """|level| = 4 with t_m0 = 50 -> counter needs ceil(50/4) = 13
        samples; the first command must come at sample 13, i.e. within 52 ns
        -- not at the end of any 10 us interval."""
        controller, _ = _controller()
        commands = _drive(controller, [0] * 100)
        first_t, _ = commands[0]
        assert first_t == pytest.approx(12 * 4.0)

    def test_down_steps_slower_at_low_frequency(self):
        """The 1/f^2 count-down scaling: more cautious near f_min."""
        fast_ctrl, _ = _controller()
        slow_ctrl, _ = _controller()
        fast = _drive(fast_ctrl, [0] * 2000, freq=1.0)
        slow = _drive(slow_ctrl, [0] * 2000, freq=0.5)
        assert len(slow) < len(fast)


class TestScalingUp:
    def test_full_queue_steps_up(self):
        controller, _ = _controller()
        commands = _drive(controller, [16] * 200)
        assert commands
        assert all(cmd.steps > 0 for _, cmd in commands)

    def test_sudden_jump_triggers_slope_fsm_quickly(self):
        """A severe swing (slope +5/sample) must trigger within ~2 samples
        via the slope signal (t_l0 = 8, increments of 5)."""
        controller, _ = _controller()
        ramp = [4, 4, 4, 9, 14]  # steady, then climbing fast
        commands = _drive(controller, ramp)
        assert commands
        t, cmd = commands[0]
        assert cmd.steps > 0
        assert t <= 4 * 4.0

    def test_combined_trigger_gives_double_step(self):
        """When level and slope trigger together the scheduler combines
        them into one +-2-step action.

        Construction: hold occupancy 6 (level +2/sample, slope quiet) for 24
        samples so the level counter sits at 48, then jump to 16 -- the jump
        adds 12 to the level counter (60 >= 50, trigger) and drives the slope
        counter to 10 (>= 8, trigger) on the same sample.
        """
        controller, _ = _controller()
        stream = [4] + [6] * 24 + [16]
        commands = _drive(controller, stream)
        assert commands
        assert commands[-1][1].steps == 2


class TestSwitchingHold:
    def test_no_new_action_during_switch(self):
        controller, machine = _controller()
        commands = _drive(controller, [16] * 200)
        ts = controller.switching_time_ns
        for (t1, c1), (t2, c2) in zip(commands, commands[1:]):
            assert t2 - t1 >= ts * abs(c1.steps) - 1e-9

    def test_switching_time_matches_regulator_physics(self):
        controller, machine = _controller()
        expected = machine.step_ghz * 1e3 * machine.slew_ns_per_mhz
        assert controller.switching_time_ns == pytest.approx(expected)


class TestAblations:
    def test_level_only_controller_still_works(self):
        controller, _ = _controller(use_slope_signal=False)
        commands = _drive(controller, [0] * 500)
        assert commands

    def test_level_only_misses_fast_swings(self):
        """Without the slope signal, a short spike whose accumulated level
        deviation stays under T_m0 produces no reaction at all, while the
        slope FSM (T_l0 = 8) catches it within two samples."""
        spike = [4] * 50 + [9, 14, 16, 14, 9] + [4] * 50
        with_slope, _ = _controller()
        without, _ = _controller(use_slope_signal=False)
        cmds_with = _drive(with_slope, spike)
        cmds_without = _drive(without, spike)
        assert len(cmds_with) >= 1
        assert len(cmds_without) == 0

    def test_fsms_return_to_wait_after_swing(self):
        """After a swing subsides and any in-flight switch completes, both
        FSMs must be back in Wait (Figure 4's reset arcs)."""
        from repro.core.fsm import FsmState

        controller, _ = _controller()
        # a falling swing, then long enough at the reference for the
        # switching hold (~43 samples) to expire and the FSMs to reset
        stream = [16, 15, 13, 11, 9, 7, 5] + [4] * 120
        _drive(controller, stream)
        assert controller.level_fsm.state is FsmState.WAIT
        assert controller.slope_fsm.state is FsmState.WAIT

    def test_opposite_simultaneous_triggers_cancel(self):
        """Queue far above reference (level counting up) while draining fast
        (slope counting down): when both fire on one sample the scheduler
        cancels them, no command is issued, and both FSMs reset to Wait.

        Construction (t_m0 = 26, t_l0 = 6): three samples at occupancy 12
        put the level counter at 24; the drop to 6 adds 2 (level trigger at
        26) while the slope of -6 fills the slope counter (6 >= 6) on the
        same sample.  Count-down frequency scaling is disabled so the slope
        increment is exact.
        """
        from repro.core.fsm import FsmState

        controller, _ = _controller(t_m0=26.0, t_l0=6.0, freq_scaled_down_delay=False)
        commands = _drive(controller, [12, 12, 12, 6])
        assert commands == []
        assert controller.scheduler.cancellations == 1
        assert controller.level_fsm.state is FsmState.WAIT
        assert controller.slope_fsm.state is FsmState.WAIT


class TestReset:
    def test_reset_restores_initial_state(self):
        controller, _ = _controller()
        _drive(controller, [0] * 300)
        assert controller.commands_issued > 0
        controller.reset()
        assert controller.commands_issued == 0
        assert controller.scheduler.actions == 0
        assert _drive(controller, [4] * 10) == []
