"""Unit tests for the hardware-cost model (paper Figure 5 and the
"smaller and cheaper hardware" claim)."""

import pytest

from repro.core.hardware import (
    adaptive_decision_logic_cost,
    attack_decay_decision_logic_cost,
    pid_decision_logic_cost,
    _bits_for,
)
from repro.mcd.domains import MachineConfig


class TestBitWidths:
    def test_bits_for(self):
        assert _bits_for(1) == 1
        assert _bits_for(20) == 5
        assert _bits_for(63) == 6
        assert _bits_for(64) == 7
        assert _bits_for(255) == 8

    def test_paper_figure5_widths(self):
        """A ~20-entry queue needs a 6-bit adder and 7-bit signal; the
        time-delay counter is 8 bits for delays up to 256."""
        cost = adaptive_decision_logic_cost(queue_size=63, delay_max=256)
        blocks = cost.as_dict()
        assert blocks["level adder"] == 6 * 5
        assert blocks["level comparator"] == 7 * 4
        assert blocks["level delay counter"] == 8 * 8


class TestCostComparison:
    def test_adaptive_cheaper_than_pid(self):
        """The paper's hardware claim: no multipliers -> much smaller."""
        adaptive = adaptive_decision_logic_cost()
        pid = pid_decision_logic_cost()
        assert adaptive.total_gates < pid.total_gates / 3

    def test_adaptive_cheaper_than_attack_decay(self):
        adaptive = adaptive_decision_logic_cost()
        ad = attack_decay_decision_logic_cost()
        assert adaptive.total_gates < ad.total_gates

    def test_pid_dominated_by_multipliers(self):
        pid = pid_decision_logic_cost()
        blocks = pid.as_dict()
        assert blocks["gain multipliers (x3)"] > pid.total_gates / 2

    def test_from_machine_config(self):
        cost = adaptive_decision_logic_cost(machine=MachineConfig())
        assert cost.total_gates > 0
        assert cost.scheme == "adaptive"

    def test_total_is_sum_of_blocks(self):
        cost = adaptive_decision_logic_cost()
        assert cost.total_gates == sum(cost.as_dict().values())
