"""Unit tests for the adaptive controller configuration."""

import pytest

from repro.core.config import AdaptiveConfig, default_adaptive_config
from repro.mcd.domains import DomainId


class TestValidation:
    def test_defaults_valid(self):
        AdaptiveConfig()

    def test_rejects_negative_qref(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(q_ref=-1)

    def test_rejects_negative_windows(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(dw_level=-0.5)

    def test_rejects_nonpositive_delays(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(t_m0=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(t_l0=-1)

    def test_rejects_nonpositive_constants(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(m=0.0)


class TestPaperDefaults:
    def test_delays_match_section_51(self):
        config = AdaptiveConfig()
        assert config.t_m0 == 50.0
        assert config.t_l0 == 8.0

    def test_delay_ratio_in_remark3_range(self):
        """Section 4's Remark 3: T_m0/T_l0 should be roughly 2-8."""
        config = AdaptiveConfig()
        assert 2.0 <= config.delay_ratio <= 8.0

    def test_deviation_windows(self):
        config = AdaptiveConfig()
        assert config.dw_level == 1.0
        assert config.dw_slope == 0.0

    def test_per_domain_qref(self):
        assert default_adaptive_config(DomainId.INT).q_ref == 6
        assert default_adaptive_config(DomainId.FP).q_ref == 4
        assert default_adaptive_config(DomainId.LS).q_ref == 4

    def test_front_end_not_controllable(self):
        with pytest.raises(ValueError):
            default_adaptive_config(DomainId.FRONT_END)

    def test_overrides(self):
        config = default_adaptive_config(DomainId.FP, t_m0=16.0, q_ref=8)
        assert config.t_m0 == 16.0
        assert config.q_ref == 8

    def test_with_delays(self):
        config = AdaptiveConfig().with_delays(100.0, 10.0)
        assert config.t_m0 == 100.0 and config.t_l0 == 10.0
        assert config.q_ref == AdaptiveConfig().q_ref
