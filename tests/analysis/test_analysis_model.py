"""Unit tests for the continuous aggregate model (paper eqs 1-9)."""

import pytest

from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel


class TestServiceModel:
    def test_mu_f_relationship(self):
        """1/mu = t1 + c2/f: the two-part execution-time split."""
        service = ServiceModel(t1=0.5, c2=2.0)
        f = 0.8
        assert 1.0 / service.mu(f) == pytest.approx(0.5 + 2.0 / f)

    def test_mu_increases_with_frequency(self):
        service = ServiceModel(t1=0.5, c2=2.0)
        assert service.mu(1.0) > service.mu(0.5) > service.mu(0.25)

    def test_mu_saturates_at_frequency_independent_bound(self):
        """As f -> inf, mu -> 1/t1: memory-bound code cannot go faster."""
        service = ServiceModel(t1=0.5, c2=2.0)
        assert service.mu(1e9) == pytest.approx(2.0, rel=1e-6)

    def test_pure_compute_scales_linearly(self):
        """With t1 = 0, mu = f/c2: halve the clock, halve the rate."""
        service = ServiceModel(t1=0.0, c2=2.0)
        assert service.mu(1.0) == pytest.approx(2.0 * service.mu(0.5))

    def test_derivative_matches_numerics(self):
        service = ServiceModel(t1=0.3, c2=1.5)
        f, h = 0.7, 1e-6
        numeric = (service.mu(f + h) - service.mu(f - h)) / (2 * h)
        assert service.dmu_df(f) == pytest.approx(numeric, rel=1e-5)

    def test_k_approx_exact_at_operating_point(self):
        """dmu/df == k/f^2 exactly at f_op by construction."""
        service = ServiceModel(t1=0.3, c2=1.5)
        f_op = 0.6
        k = service.k_approx(f_op)
        assert k / (f_op * f_op) == pytest.approx(service.dmu_df(f_op))

    def test_k_approx_quality_near_and_far(self):
        """The quadratic approximation is tight near the operating point and
        degrades (but stays order-of-magnitude right) at the range edges --
        the honest statement of the paper's simplification."""
        service = ServiceModel(t1=1.0, c2=1.0)
        f_op = 0.6
        k = service.k_approx(f_op)
        for f in (0.5, 0.7):  # near the operating point
            assert k / (f * f) == pytest.approx(service.dmu_df(f), rel=0.35)
        for f in (0.25, 1.0):  # range edges
            ratio = (k / (f * f)) / service.dmu_df(f)
            assert 0.25 < ratio < 4

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ServiceModel(t1=-0.1, c2=1.0)
        with pytest.raises(ValueError):
            ServiceModel(t1=0.1, c2=0.0)
        with pytest.raises(ValueError):
            ServiceModel(0.1, 1.0).mu(0.0)


class TestControllerModel:
    def _ctrl(self):
        return ControllerModel(step=0.01, t_m0=50.0, t_l0=8.0)

    def test_positive_level_raises_frequency(self):
        assert self._ctrl().f_dot(q=8.0, q_dot=0.0, f=1.0, q_ref=4.0) > 0

    def test_negative_level_lowers_frequency(self):
        assert self._ctrl().f_dot(q=0.0, q_dot=0.0, f=1.0, q_ref=4.0) < 0

    def test_slope_term_adds(self):
        ctrl = self._ctrl()
        without = ctrl.f_dot(q=4.0, q_dot=0.0, f=1.0, q_ref=4.0)
        with_slope = ctrl.f_dot(q=4.0, q_dot=2.0, f=1.0, q_ref=4.0)
        assert without == pytest.approx(0.0)
        assert with_slope > 0

    def test_slope_term_weighted_by_shorter_delay(self):
        """T_l0 < T_m0 makes a unit of slope stronger than a unit of level."""
        ctrl = self._ctrl()
        level_only = ctrl.f_dot(q=5.0, q_dot=0.0, f=1.0, q_ref=4.0)
        slope_only = ctrl.f_dot(q=4.0, q_dot=1.0, f=1.0, q_ref=4.0)
        assert slope_only > level_only

    def test_delay_scaling_slows_low_frequency(self):
        """g(f) = 1/f^2: at half frequency the commanded slew is 4x weaker."""
        ctrl = self._ctrl()
        full = ctrl.f_dot(q=0.0, q_dot=0.0, f=1.0, q_ref=4.0)
        low = ctrl.f_dot(q=0.0, q_dot=0.0, f=0.5, q_ref=4.0)
        assert low == pytest.approx(full / 4.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            ControllerModel(step=0.0, t_m0=50.0, t_l0=8.0)
        with pytest.raises(ValueError):
            ControllerModel(step=0.01, t_m0=0.0, t_l0=8.0)


class TestClosedLoop:
    def _model(self):
        return ClosedLoopModel(
            controller=ControllerModel(step=0.01, t_m0=50.0, t_l0=8.0),
            service=ServiceModel(t1=0.2, c2=1.0),
            q_ref=4.0,
        )

    def test_queue_grows_when_load_exceeds_service(self):
        model = self._model()
        q_dot, _ = model.derivative((4.0, 0.5), load=10.0)
        assert q_dot > 0

    def test_queue_shrinks_when_overprovisioned(self):
        model = self._model()
        q_dot, _ = model.derivative((4.0, 1.0), load=0.0)
        assert q_dot < 0

    def test_empty_queue_cannot_go_negative(self):
        model = self._model()
        q_dot, _ = model.derivative((0.0, 1.0), load=0.0)
        assert q_dot == 0.0

    def test_full_queue_saturates(self):
        model = self._model()
        q_dot, _ = model.derivative((16.0, 0.25), load=100.0)
        assert q_dot == 0.0

    def test_frequency_saturations(self):
        model = self._model()
        _, f_dot = model.derivative((0.0, model.f_min), load=0.0)
        assert f_dot == 0.0
        _, f_dot = model.derivative((16.0, model.f_max), load=100.0)
        assert f_dot == 0.0

    def test_equilibrium(self):
        """At q = q_ref with load = mu(f), nothing moves."""
        model = self._model()
        f = 0.7
        q_dot, f_dot = model.derivative((4.0, f), load=model.service.mu(f))
        assert q_dot == pytest.approx(0.0)
        assert f_dot == pytest.approx(0.0)
