"""Tests for the discrete-time sampled-loop model (paper future work)."""

import pytest

np = pytest.importorskip("numpy")  # the analysis layer is numpy-gated

from repro.analysis.discrete import DiscreteClosedLoop, from_continuous, max_stable_km
from repro.analysis.linearize import linearize
from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel


def _loop(k_m=0.01, k_l=0.05, gamma=1.0, dead_time=0):
    return DiscreteClosedLoop(k_m=k_m, k_l=k_l, gamma=gamma, dead_time=dead_time)


class TestStructure:
    def test_matrix_dimensions_grow_with_dead_time(self):
        assert _loop(dead_time=0).system_matrix().shape == (3, 3)
        assert _loop(dead_time=3).system_matrix().shape == (6, 6)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DiscreteClosedLoop(k_m=0.0, k_l=0.1)
        with pytest.raises(ValueError):
            DiscreteClosedLoop(k_m=0.1, k_l=-0.1)
        with pytest.raises(ValueError):
            DiscreteClosedLoop(k_m=0.1, k_l=0.1, dead_time=-1)

    def test_simulate_rejects_bad_steps(self):
        with pytest.raises(ValueError):
            _loop().simulate_step(steps=0)


class TestSmallGainAgreesWithContinuous:
    def test_small_gains_stable(self):
        """In the continuous regime (gains << 1/period) the discrete loop is
        stable, agreeing with Remark 1."""
        assert _loop(k_m=0.001, k_l=0.01).is_stable

    def test_from_continuous_mapping(self):
        model = ClosedLoopModel(
            controller=ControllerModel(step=0.2, t_m0=50.0, t_l0=8.0),
            service=ServiceModel(t1=0.2, c2=1.0),
            q_ref=4.0,
        )
        system = linearize(model, f_op=0.6)
        discrete = from_continuous(system)
        assert discrete.is_stable
        # decay rate of the dominant discrete mode ~ slowest continuous root
        continuous_decay = abs(max(
            (r.real for r in __import__("repro.analysis.stability",
                                        fromlist=["characteristic_roots"]
                                        ).characteristic_roots(system.k_m, system.k_l)),
        ))
        discrete_decay = -np.log(discrete.spectral_radius)
        assert discrete_decay == pytest.approx(continuous_decay, rel=0.2)

    def test_step_response_converges_when_stable(self):
        errors, _ = _loop(k_m=0.005, k_l=0.05).simulate_step(e0=-4.0, steps=5000)
        assert abs(errors[-1]) < 0.05 * 4.0


class TestDiscreteCorrection:
    """The headline: large gains destabilize the *sampled* loop."""

    def test_large_gain_unstable(self):
        loop = _loop(k_m=3.0, k_l=1.0)
        assert not loop.is_stable
        errors, _ = loop.simulate_step(e0=-1.0, steps=300)
        assert abs(errors[-1]) > abs(errors[0])  # divergence in time domain

    def test_eigen_verdict_matches_simulation(self):
        for k_m in (0.01, 0.2, 1.0, 3.0, 6.0):
            loop = _loop(k_m=k_m, k_l=0.4)
            errors, _ = loop.simulate_step(e0=-1.0, steps=4000)
            diverged = abs(errors[-1]) > 10.0
            if loop.spectral_radius < 0.999:
                assert not diverged, k_m
            elif loop.spectral_radius > 1.001:
                assert diverged, k_m

    def test_dead_time_shrinks_stability_region(self):
        boundary_now = max_stable_km(k_l=0.3, dead_time=0)
        boundary_late = max_stable_km(k_l=0.3, dead_time=8)
        assert boundary_late < boundary_now

    def test_boundary_is_finite_unlike_continuous_model(self):
        boundary = max_stable_km(k_l=0.3, hi=64.0)
        assert 0.0 < boundary < 64.0

    def test_boundary_bisection_consistent(self):
        k_l = 0.3
        boundary = max_stable_km(k_l=k_l)
        assert DiscreteClosedLoop(k_m=boundary * 0.95, k_l=k_l).is_stable
        assert not DiscreteClosedLoop(k_m=boundary * 1.05, k_l=k_l).is_stable

    def test_paper_operating_point(self):
        """At the paper's aggregate gains (tiny step per sample) the sampled
        loop is stable without dead time, but the *pure-delay* model puts
        the tolerance at only a handful of samples -- marginal oscillatory
        growth beyond that.  The real controller stays well-behaved because
        its time delay is a resettable counter (not a transport lag) and its
        actions saturate; the gap between the two is exactly the kind of
        conservatism a linear dead-time model carries, and the reason the
        reproduction keeps both model and simulator."""
        # K ~ k*step/T with step ~ 0.0031 (2.34 MHz / 750 MHz), k ~ 0.3
        k_m = 0.3 * 0.0031 / 50.0
        k_l = 0.3 * 0.0031 / 8.0
        assert DiscreteClosedLoop(k_m=k_m, k_l=k_l, dead_time=0).is_stable
        assert DiscreteClosedLoop(k_m=k_m, k_l=k_l, dead_time=5).is_stable
        marginal = DiscreteClosedLoop(k_m=k_m, k_l=k_l, dead_time=50)
        assert not marginal.is_stable
        # ... but only marginally: the unstable mode grows very slowly
        assert marginal.spectral_radius < 1.001
