"""Unit tests for the stability analysis (paper eq 13, Remarks 1-3)."""

import math

import pytest

from repro.analysis.linearize import LinearizedSystem, linearize
from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel
from repro.analysis.stability import (
    StabilityReport,
    analyze,
    characteristic_roots,
    damping_ratio,
    delay_ratio_bounds,
    is_stable,
    percent_overshoot,
    recommended_delay_ratio_range,
    rise_time,
    settling_time,
)


def _system(t_m0=50.0, t_l0=8.0, step=0.0031, gamma=1.0, f_op=0.6):
    model = ClosedLoopModel(
        controller=ControllerModel(step=step, t_m0=t_m0, t_l0=t_l0),
        service=ServiceModel(t1=0.2, c2=1.0),
        q_ref=4.0,
        gamma=gamma,
    )
    return linearize(model, f_op)


class TestLinearization:
    def test_gains_formula(self):
        """K_m = m*gamma*k*step/T_m0, K_l = l*gamma*k*step/T_l0 (eq 12)."""
        sys = _system()
        service = ServiceModel(t1=0.2, c2=1.0)
        k = service.k_approx(0.6)
        assert sys.k_m == pytest.approx(k * 0.0031 / 50.0)
        assert sys.k_l == pytest.approx(k * 0.0031 / 8.0)

    def test_gain_ratio_is_delay_ratio(self):
        sys = _system(t_m0=40.0, t_l0=10.0)
        assert sys.k_l / sys.k_m == pytest.approx(4.0)

    def test_rejects_out_of_range_operating_point(self):
        model = ClosedLoopModel(
            controller=ControllerModel(step=0.01, t_m0=50.0, t_l0=8.0),
            service=ServiceModel(t1=0.2, c2=1.0),
            q_ref=4.0,
        )
        with pytest.raises(ValueError):
            linearize(model, 0.1)

    def test_rejects_nonpositive_gains(self):
        with pytest.raises(ValueError):
            LinearizedSystem(k_m=0.0, k_l=1.0, k=1.0, f_op=1.0)


class TestCharacteristicRoots:
    def test_roots_satisfy_characteristic_equation(self):
        k_m, k_l = 0.04, 0.3
        for s in characteristic_roots(k_m, k_l):
            residual = s * s + k_l * s + k_m
            assert abs(residual) < 1e-12

    def test_overdamped_real_roots(self):
        r1, r2 = characteristic_roots(k_m=0.01, k_l=1.0)  # K_l^2 > 4 K_m
        assert abs(r1.imag) < 1e-12 and abs(r2.imag) < 1e-12

    def test_underdamped_complex_pair(self):
        r1, r2 = characteristic_roots(k_m=1.0, k_l=0.2)
        assert r1.imag != 0
        assert r1.real == pytest.approx(r2.real)
        assert r1.imag == pytest.approx(-r2.imag)


class TestRemark1:
    """Stability for any positive parameters."""

    @pytest.mark.parametrize("k_m", [1e-6, 0.01, 1.0, 100.0])
    @pytest.mark.parametrize("k_l", [1e-6, 0.1, 10.0])
    def test_always_stable_with_positive_gains(self, k_m, k_l):
        assert is_stable(k_m, k_l)

    def test_any_positive_delays_and_step_are_stable(self):
        for t_m0 in (1.0, 50.0, 1000.0):
            for t_l0 in (0.5, 8.0, 100.0):
                sys = _system(t_m0=t_m0, t_l0=t_l0)
                assert analyze(sys).stable


class TestRemark2:
    """Smaller delays -> faster response."""

    def test_smaller_delays_shrink_settling_time(self):
        slow = analyze(_system(t_m0=100.0, t_l0=16.0))
        fast = analyze(_system(t_m0=25.0, t_l0=4.0))
        assert fast.settling_time < slow.settling_time

    def test_settling_time_formula(self):
        assert settling_time(0.5) == pytest.approx(16.0)

    def test_rise_time_positive_and_shrinks_with_gain(self):
        assert rise_time(0.04, 0.2) > rise_time(0.16, 0.4)


class TestRemark3:
    """Delay-ratio constraint for small overshoot."""

    def test_damping_ratio_formula(self):
        assert damping_ratio(k_m=0.25, k_l=0.5) == pytest.approx(0.5)

    def test_overshoot_decreases_with_damping(self):
        # same K_m, increasing K_l
        o1 = percent_overshoot(0.25, 0.2)
        o2 = percent_overshoot(0.25, 0.5)
        o3 = percent_overshoot(0.25, 1.0)  # critically damped
        assert o1 > o2 > o3 == 0.0

    def test_half_damping_gives_sixteen_percent(self):
        assert percent_overshoot(0.25, 0.5) == pytest.approx(16.3, abs=0.2)

    def test_delay_ratio_bounds_at_kl_half(self):
        """The paper's worked example: K_l = 1/2 gives R in [2, 8]."""
        lo, hi = delay_ratio_bounds(0.5)
        assert lo == pytest.approx(2.0)
        assert hi == pytest.approx(8.0)
        assert recommended_delay_ratio_range() == (lo, hi)

    def test_paper_default_delays_inside_recommended_range(self):
        lo, hi = recommended_delay_ratio_range()
        assert lo <= 50.0 / 8.0 <= hi

    def test_ratio_maps_monotonically_to_damping(self):
        """Larger T_m0/T_l0 (smaller K_m at fixed K_l) -> more damping."""
        xi = [
            analyze(_system(t_m0=r * 8.0, t_l0=8.0)).damping_ratio
            for r in (2.0, 4.0, 8.0)
        ]
        assert xi[0] < xi[1] < xi[2]


class TestReport:
    def test_summary_renders(self):
        report = analyze(_system())
        text = report.summary()
        assert "STABLE" in text
        assert "xi=" in text

    def test_report_fields_consistent(self):
        report = analyze(_system())
        assert report.natural_frequency == pytest.approx(math.sqrt(report.k_m))
        assert report.settling_time == pytest.approx(8.0 / report.k_l)
