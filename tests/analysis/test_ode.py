"""Tests for the closed-loop ODE simulations.

These validate the closed-form stability formulas against measured
trajectories -- the check the paper's Figure-6 approximation argument rests
on -- and exercise the nonlinear saturating model.
"""

import pytest

np = pytest.importorskip("numpy")  # the analysis layer is numpy-gated

from repro.analysis.linearize import LinearizedSystem, linearize
from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel
from repro.analysis.ode import simulate_linear_step, simulate_nonlinear
from repro.analysis.stability import analyze


def _loop(t_m0=50.0, t_l0=8.0, step=0.2):
    # step = 0.2 (in normalized frequency per sampling period) gives loop
    # gains large enough that trajectories settle within a few thousand
    # periods; the real hardware step is far smaller and correspondingly
    # slower, which only rescales time.
    return ClosedLoopModel(
        controller=ControllerModel(step=step, t_m0=t_m0, t_l0=t_l0),
        service=ServiceModel(t1=0.2, c2=1.0),
        q_ref=4.0,
    )


class TestLinearStep:
    def test_converges_to_reference(self):
        sys = linearize(_loop(), 0.6)
        resp = simulate_linear_step(sys, duration=3000.0)
        assert abs(resp.final_value) < 0.02

    def test_measured_overshoot_matches_formula(self):
        sys = linearize(_loop(t_m0=16.0, t_l0=8.0), 0.6)  # underdamped
        report = analyze(sys)
        resp = simulate_linear_step(sys, duration=5000.0, dt=0.02)
        assert resp.overshoot_pct == pytest.approx(report.percent_overshoot, abs=2.0)

    def test_measured_settling_close_to_formula(self):
        sys = linearize(_loop(), 0.6)
        report = analyze(sys)
        resp = simulate_linear_step(sys, duration=12000.0, dt=0.1)
        # the 8/K_l rule is a ~2% band estimate; allow 2x slack
        assert resp.settling_time < 2.5 * report.settling_time

    def test_overdamped_never_overshoots(self):
        sys = linearize(_loop(t_m0=2000.0, t_l0=4.0), 0.6)
        assert analyze(sys).damping_ratio > 1.0  # genuinely overdamped
        resp = simulate_linear_step(sys, duration=8000.0)
        assert resp.overshoot_pct < 0.5

    def test_rejects_bad_duration(self):
        sys = linearize(_loop(), 0.6)
        with pytest.raises(ValueError):
            simulate_linear_step(sys, duration=0.0)


class TestNonlinear:
    def test_tracks_load_step(self):
        """After a load step, the queue returns near q_ref and frequency
        settles where mu(f) = load."""
        model = _loop()
        load_value = 0.55

        resp = simulate_nonlinear(
            model,
            load=lambda t: load_value,
            q0=4.0,
            f0=1.0,
            duration=30000.0,
            dt=0.5,
        )
        f_final = float(resp.second[-1])
        assert model.service.mu(f_final) == pytest.approx(load_value, rel=0.05)
        assert float(resp.q[-1]) == pytest.approx(4.0, abs=1.0)

    def test_zero_load_drives_frequency_to_floor(self):
        model = _loop()
        resp = simulate_nonlinear(
            model, load=lambda t: 0.0, q0=0.0, f0=1.0, duration=40000.0, dt=0.5
        )
        assert float(resp.second[-1]) == pytest.approx(model.f_min, abs=0.01)

    def test_overload_saturates_queue_and_frequency(self):
        model = _loop()
        resp = simulate_nonlinear(
            model, load=lambda t: 10.0, q0=4.0, f0=0.5, duration=20000.0, dt=0.5
        )
        assert float(resp.second[-1]) == pytest.approx(model.f_max, abs=0.01)
        assert float(resp.q[-1]) == pytest.approx(model.q_max, abs=0.1)

    def test_state_always_within_saturation_bounds(self):
        model = _loop()
        resp = simulate_nonlinear(
            model,
            load=lambda t: 0.8 if (t // 1000) % 2 == 0 else 0.1,
            duration=10000.0,
            dt=0.5,
        )
        assert np.all(resp.q >= -1e-9)
        assert np.all(resp.q <= model.q_max + 1e-9)
        assert np.all(resp.second >= model.f_min - 1e-9)
        assert np.all(resp.second <= model.f_max + 1e-9)

    def test_nonlinear_agrees_with_linear_near_operating_point(self):
        """Small perturbations: the nonlinear response should resemble the
        linearized one (same sign of motion, comparable magnitude)."""
        model = _loop()
        f_op = 0.6
        load_value = model.service.mu(f_op)
        resp = simulate_nonlinear(
            model,
            load=lambda t: load_value,
            q0=3.0,  # one entry below reference
            f0=f_op,
            duration=20000.0,
            dt=0.5,
        )
        assert float(resp.q[-1]) == pytest.approx(4.0, abs=0.6)
