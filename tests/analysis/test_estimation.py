"""Tests for online/offline mu-f parameter estimation (paper Sec 4.3)."""

import pytest

np = pytest.importorskip("numpy")  # the analysis layer is numpy-gated

from repro.analysis.estimation import (
    MuFEstimate,
    OnlineMuFEstimator,
    estimate_from_history,
    fit_mu_f,
    offline_characterization,
)
from repro.analysis.model import ServiceModel
from repro.harness.experiment import run_experiment
from repro.mcd.domains import DomainId


def _observations(t1, c2, freqs):
    model = ServiceModel(t1=t1, c2=c2)
    return freqs, [model.mu(f) for f in freqs]


class TestFit:
    def test_recovers_exact_parameters(self):
        freqs, mus = _observations(0.3, 1.2, [0.25, 0.4, 0.6, 0.8, 1.0])
        est = fit_mu_f(freqs, mus)
        assert est.t1 == pytest.approx(0.3, abs=1e-9)
        assert est.c2 == pytest.approx(1.2, abs=1e-9)
        assert est.r_squared == pytest.approx(1.0)

    def test_pure_compute_has_zero_t1(self):
        freqs, mus = _observations(0.0, 2.0, [0.3, 0.5, 0.9])
        est = fit_mu_f(freqs, mus)
        assert est.t1 == pytest.approx(0.0, abs=1e-9)
        assert est.memory_boundedness == pytest.approx(0.0, abs=1e-6)

    def test_memory_boundedness(self):
        est = MuFEstimate(t1=1.0, c2=1.0, r_squared=1.0, n_points=10)
        assert est.memory_boundedness == pytest.approx(0.5)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(7)
        freqs = np.linspace(0.25, 1.0, 60)
        model = ServiceModel(t1=0.4, c2=1.0)
        mus = np.array([model.mu(f) for f in freqs]) * (
            1.0 + 0.02 * rng.standard_normal(60)
        )
        est = fit_mu_f(freqs, mus)
        assert est.t1 == pytest.approx(0.4, abs=0.1)
        assert est.c2 == pytest.approx(1.0, abs=0.1)
        assert est.r_squared > 0.9

    def test_rejects_degenerate_frequency(self):
        with pytest.raises(ValueError, match="variation"):
            fit_mu_f([0.5, 0.5, 0.5], [1.0, 1.0, 1.0])

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_mu_f([0.5, 0.0], [1.0, 1.0])

    def test_rejects_too_few(self):
        with pytest.raises(ValueError):
            fit_mu_f([0.5], [1.0])

    def test_service_model_roundtrip(self):
        freqs, mus = _observations(0.3, 1.2, [0.25, 0.5, 1.0])
        model = fit_mu_f(freqs, mus).service_model()
        assert model.mu(0.7) == pytest.approx(ServiceModel(0.3, 1.2).mu(0.7))


class TestOnline:
    def test_not_ready_without_variation(self):
        est = OnlineMuFEstimator(window=8)
        est.update(0.5, 1.0)
        est.update(0.5, 1.0)
        assert not est.ready()
        with pytest.raises(RuntimeError):
            est.estimate()

    def test_rolling_window_evicts_old(self):
        est = OnlineMuFEstimator(window=4)
        freqs, mus = _observations(0.2, 1.0, [0.3, 0.5, 0.7, 0.9, 1.0, 0.4])
        for f, mu in zip(freqs, mus):
            est.update(f, mu)
        assert est.n_observations == 4

    def test_converges_on_stream(self):
        est = OnlineMuFEstimator(window=32)
        freqs, mus = _observations(0.25, 1.5, list(np.linspace(0.3, 1.0, 32)))
        for f, mu in zip(freqs, mus):
            est.update(f, mu)
        fitted = est.estimate()
        assert fitted.t1 == pytest.approx(0.25, abs=1e-6)
        assert fitted.c2 == pytest.approx(1.5, abs=1e-6)

    def test_rejects_small_window(self):
        with pytest.raises(ValueError):
            OnlineMuFEstimator(window=1)


class TestFromSimulation:
    @pytest.fixture(scope="class")
    def history(self):
        result = run_experiment(
            "gzip", scheme="adaptive", max_instructions=40_000, history_stride=1
        )
        return result.history

    def test_estimates_int_domain(self, history):
        est = estimate_from_history(history, DomainId.INT)
        # sane, positive frequency-dependent cost; decent fit
        assert est.c2 > 0
        assert est.n_points >= 2
        assert 0.0 <= est.memory_boundedness < 0.9

    def test_window_too_large_rejected(self, history):
        with pytest.raises(ValueError):
            estimate_from_history(history, DomainId.INT, window_samples=10**9)


class TestOfflineCharacterization:
    def test_memory_bound_domain_has_high_t1_share(self):
        est = offline_characterization("mcf", DomainId.LS, max_instructions=15_000)
        assert est.r_squared > 0.95
        assert est.memory_boundedness > 0.5

    def test_compute_bound_domain_has_low_t1_share(self):
        est = offline_characterization("swim", DomainId.FP, max_instructions=15_000)
        assert est.r_squared > 0.95
        assert est.memory_boundedness < 0.6

    def test_rejects_single_probe(self):
        with pytest.raises(ValueError):
            offline_characterization("gzip", DomainId.INT, frequencies=(0.5,))

    def test_rejects_inactive_domain(self):
        # gzip has no FP instructions at all
        with pytest.raises(ValueError, match="too little"):
            offline_characterization("gzip", DomainId.FP, max_instructions=5_000)
