"""Tests for the semantic layer: symbol table, dataflow, call graph."""

import ast

from conftest import IN_SCOPE

from repro.statcheck.callgraph import CallGraph
from repro.statcheck.dataflow import def_use
from repro.statcheck.engine import Project, SourceFile
from repro.statcheck.semantic import SymbolTable


def _project(*named_sources):
    files = [
        SourceFile.from_source(source, path=f"{module}.py", module=module)
        for module, source in named_sources
    ]
    return Project(files=files)


class TestSymbolTable:
    def test_indexes_functions_methods_and_classes(self):
        table = SymbolTable.build(
            _project(
                (
                    "pkg.mod",
                    "def helper():\n"
                    "    return 1\n"
                    "class Widget:\n"
                    "    def render(self):\n"
                    "        return helper()\n",
                )
            )
        )
        assert "pkg.mod.helper" in table.functions
        assert "pkg.mod.Widget.render" in table.functions
        assert "pkg.mod.Widget" in table.classes
        widget = table.classes["pkg.mod.Widget"]
        assert "render" in widget.methods

    def test_resolves_imported_alias(self):
        table = SymbolTable.build(
            _project(
                ("lib.util", "def run_job(job):\n    return job\n"),
                (
                    "app.main",
                    "from lib.util import run_job as rj\n"
                    "def go(job):\n"
                    "    return rj(job)\n",
                ),
            )
        )
        resolved = table.resolve_function("app.main", "rj")
        assert resolved is not None
        assert resolved.qualname == "lib.util.run_job"

    def test_mutable_globals_detection(self):
        table = SymbolTable.build(
            _project(
                (
                    "state",
                    "import collections\n"
                    "CACHE = {}\n"
                    "QUEUE = collections.deque()\n"
                    "LIMIT = 5\n"
                    "NAME = 'x'\n",
                )
            )
        )
        info = table.modules["state"]
        assert set(info.mutable_globals) == {"CACHE", "QUEUE"}

    def test_dependency_edges_for_incremental_invalidation(self):
        table = SymbolTable.build(
            _project(
                ("repro.mcd.processor", "X = 1\n"),
                (
                    "repro.simcore.fast",
                    "from repro.mcd import processor\n"
                    "Y = processor.X\n",
                ),
            )
        )
        deps = table.modules["repro.simcore.fast"].deps
        assert "repro.mcd.processor" in deps

    def test_mro_methods_walks_project_bases(self):
        table = SymbolTable.build(
            _project(
                (
                    "base",
                    "class Ref:\n"
                    "    def step(self):\n"
                    "        return 0\n",
                ),
                (
                    "fast",
                    "from base import Ref\n"
                    "class Quick(Ref):\n"
                    "    pass\n",
                ),
            )
        )
        quick = table.classes["fast.Quick"]
        found = table.mro_methods(quick, "step")
        assert [fn.qualname for fn in found] == ["base.Ref.step"]


class TestDefUse:
    def _func(self, source):
        tree = ast.parse(source)
        return tree.body[0]

    def test_parameter_reaches_first_use(self):
        result = def_use(self._func("def f(x):\n    return x\n"))
        (use,) = [u for u in result.uses if u.name == "x"]
        assert use.reaching == frozenset({1})

    def test_straight_line_redefinition_replaces(self):
        result = def_use(
            self._func(
                "def f():\n"
                "    x = 1\n"
                "    x = 2\n"
                "    return x\n"
            )
        )
        assert result.definitions["x"] == [2, 3]
        assert result.reaching("x", 4) == frozenset({3})

    def test_branches_merge_reaching_sets(self):
        result = def_use(
            self._func(
                "def f(flag):\n"
                "    if flag:\n"
                "        x = 1\n"
                "    else:\n"
                "        x = 2\n"
                "    return x\n"
            )
        )
        assert result.reaching("x", 6) == frozenset({3, 5})

    def test_loop_body_definition_reaches_after_loop(self):
        result = def_use(
            self._func(
                "def f(items):\n"
                "    x = 0\n"
                "    for item in items:\n"
                "        x = item\n"
                "    return x\n"
            )
        )
        # both the pre-loop and in-loop definitions can reach the return
        assert result.reaching("x", 5) == frozenset({2, 4})


class TestCallGraph:
    def test_direct_call_edge(self):
        table = SymbolTable.build(
            _project(
                (
                    "m",
                    "def callee():\n"
                    "    return 1\n"
                    "def caller():\n"
                    "    return callee()\n",
                )
            )
        )
        graph = CallGraph.build(table)
        kinds = {
            (e.caller, e.callee): e.kind for e in graph.edges
        }
        assert kinds[("m.caller", "m.callee")] == "direct"

    def test_method_call_edge_through_self(self):
        table = SymbolTable.build(
            _project(
                (
                    "m",
                    "class C:\n"
                    "    def a(self):\n"
                    "        return self.b()\n"
                    "    def b(self):\n"
                    "        return 1\n",
                )
            )
        )
        graph = CallGraph.build(table)
        kinds = {(e.caller, e.callee): e.kind for e in graph.edges}
        assert kinds[("m.C.a", "m.C.b")] == "method"

    def test_pool_submitted_callable_is_worker_entry(self):
        table = SymbolTable.build(
            _project(
                (
                    "m",
                    "def work(x):\n"
                    "    return x\n"
                    "def fan_out(executor, items):\n"
                    "    return [executor.submit(work, i) for i in items]\n",
                )
            )
        )
        graph = CallGraph.build(table)
        assert "m.work" in graph.worker_entries
        kinds = {(e.caller, e.callee): e.kind for e in graph.edges}
        assert kinds[("m.fan_out", "m.work")] == "pool"

    def test_worker_reachability_is_transitive(self):
        table = SymbolTable.build(
            _project(
                (
                    "m",
                    "def leaf():\n"
                    "    return 1\n"
                    "def work(x):\n"
                    "    return leaf()\n"
                    "def fan_out(pool, items):\n"
                    "    return pool.map(work, items)\n",
                )
            )
        )
        graph = CallGraph.build(table)
        reachable = graph.worker_reachable()
        assert reachable == {"m.work": "m.work", "m.leaf": "m.work"}

    def test_unresolvable_targets_contribute_nothing(self):
        table = SymbolTable.build(
            _project(
                (
                    "m",
                    "def fan_out(executor, handlers):\n"
                    "    return [executor.submit(h) for h in handlers]\n",
                )
            )
        )
        graph = CallGraph.build(table)
        assert graph.worker_entries == set()


def test_in_scope_module_constant_matches_fixture_layout():
    # the conftest virtual module must stay inside the semantic rules'
    # scope, or every fixture above silently tests nothing
    assert IN_SCOPE.startswith("repro.")
