"""Incremental-analysis tests: cache hits, invalidation, parallel misses."""

import json
import os

import pytest

from repro.statcheck.engine import Analyzer
from repro.statcheck.incremental import IncrementalAnalyzer


@pytest.fixture
def tree(tmp_path):
    """A two-module package: ``app`` imports ``state``."""
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    (pkg / "state.py").write_text("LIMIT = 5\n", encoding="utf-8")
    (pkg / "app.py").write_text(
        "from pkg import state\n\nVALUE = state.LIMIT\n", encoding="utf-8"
    )
    return tmp_path


def _run(tree, cache_name="cache.json", jobs=1):
    analyzer = Analyzer()
    inc = IncrementalAnalyzer(
        analyzer, cache_path=str(tree / cache_name), jobs=jobs
    )
    return inc.analyze_paths([str(tree / "pkg")])


class TestCacheLifecycle:
    def test_cold_run_misses_everything(self, tree):
        report = _run(tree)
        assert report.incremental["hits"] == 0
        assert report.incremental["misses"] == 3
        assert not report.incremental["project_hit"]

    def test_fully_warm_run_hits_the_project_entry(self, tree):
        first = _run(tree)
        second = _run(tree)
        assert second.incremental["project_hit"]
        assert second.incremental["hits"] == 3
        assert second.incremental["misses"] == 0
        assert second.incremental["hit_ratio"] == 1.0
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]
        assert second.suppressed == first.suppressed

    def test_touched_module_reanalyzes_untouched_hits(self, tree):
        _run(tree)
        (tree / "pkg" / "state.py").write_text(
            "LIMIT = 6\n", encoding="utf-8"
        )
        report = _run(tree)
        assert not report.incremental["project_hit"]
        # state changed AND app depends on it -> both re-analyzed;
        # __init__ is untouched and hits the cache
        assert report.incremental["misses"] == 2
        assert report.incremental["hits"] == 1

    def test_dependency_invalidation_is_transitive_only_via_deps(self, tree):
        (tree / "pkg" / "leaf.py").write_text("X = 1\n", encoding="utf-8")
        _run(tree)
        (tree / "pkg" / "leaf.py").write_text("X = 2\n", encoding="utf-8")
        report = _run(tree)
        # nothing imports leaf, so only leaf itself misses
        assert report.incremental["misses"] == 1
        assert report.incremental["hits"] == 3

    def test_cached_findings_round_trip(self, tree):
        (tree / "pkg" / "bad.py").write_text(
            "def f(memo={}):\n    return memo\n", encoding="utf-8"
        )
        first = _run(tree)
        assert any(f.rule == "PY001" for f in first.findings)
        second = _run(tree)
        assert second.incremental["project_hit"]
        assert [f.to_dict() for f in second.findings] == [
            f.to_dict() for f in first.findings
        ]

    def test_rule_selection_invalidates_the_cache(self, tree):
        _run(tree)
        analyzer = Analyzer(select=["PY001"])
        inc = IncrementalAnalyzer(
            analyzer, cache_path=str(tree / "cache.json")
        )
        report = inc.analyze_paths([str(tree / "pkg")])
        assert report.incremental["misses"] == 3

    def test_corrupt_cache_is_ignored(self, tree):
        (tree / "cache.json").write_text("{not json", encoding="utf-8")
        report = _run(tree)
        assert report.incremental["misses"] == 3

    def test_parallel_and_serial_results_match(self, tree):
        (tree / "pkg" / "bad.py").write_text(
            "def f(memo={}):\n    return memo\n", encoding="utf-8"
        )
        serial = _run(tree, cache_name="serial.json", jobs=1)
        parallel = _run(tree, cache_name="parallel.json", jobs=4)
        assert [f.to_dict() for f in parallel.findings] == [
            f.to_dict() for f in serial.findings
        ]
        assert parallel.suppressed == serial.suppressed
        assert parallel.incremental["workers"] == 4

    def test_matches_non_incremental_analyzer(self, tree):
        (tree / "pkg" / "bad.py").write_text(
            "import random\n"
            "def f(memo={}):\n"
            "    return memo\n",
            encoding="utf-8",
        )
        plain = Analyzer().analyze_paths([str(tree / "pkg")])
        inc = _run(tree)
        assert [f.to_dict() for f in inc.findings] == [
            f.to_dict() for f in plain.findings
        ]
        assert inc.suppressed == plain.suppressed
        assert inc.files_scanned == plain.files_scanned

    def test_different_tree_same_content_does_not_replay_paths(
        self, tree, tmp_path_factory
    ):
        """Cache entries are keyed by path too: a second checkout with
        identical content must not resurrect the first checkout's paths."""
        cache = str(tree / "cache.json")
        analyzer = Analyzer()
        IncrementalAnalyzer(analyzer, cache_path=cache).analyze_paths(
            [str(tree / "pkg")]
        )
        other = tmp_path_factory.mktemp("other")
        pkg = other / "pkg"
        pkg.mkdir()
        for name in ("__init__.py", "state.py", "app.py"):
            (pkg / name).write_text(
                (tree / "pkg" / name).read_text(encoding="utf-8"),
                encoding="utf-8",
            )
        report = IncrementalAnalyzer(
            Analyzer(), cache_path=cache
        ).analyze_paths([str(pkg)])
        assert not report.incremental["project_hit"]
        assert report.incremental["misses"] == 3


class TestCacheFileFormat:
    def test_cache_is_json_with_module_entries(self, tree):
        _run(tree)
        with open(tree / "cache.json", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["version"] == 1
        assert set(data["modules"]) == {"pkg", "pkg.state", "pkg.app"}
        app = data["modules"]["pkg.app"]
        assert "pkg.state" in app["deps"]
        assert os.path.basename(app["path"]) == "app.py"
