"""Meta-test: no registered rule can land half-tested.

Every rule in the registry must ship with both a firing and a clean
fixture under ``tests/statcheck/fixtures/`` (named ``<id>_fires.py`` /
``<id>_clean.py``) and must be discoverable through ``--list-rules``.
The pseudo-rules E001 (parse errors) and SUP001 (unjustified
suppressions) are emitted by the engine itself, not registered, so they
are exempt by construction.
"""

import os

import pytest

from repro.statcheck.cli import EXIT_CLEAN, main
from repro.statcheck.registry import all_rules

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

RULE_IDS = sorted(cls.id for cls in all_rules())


def test_registry_is_the_expected_size():
    # bump deliberately when adding a rule -- with its fixtures and docs
    assert len(RULE_IDS) == 24


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_every_rule_has_a_firing_fixture(rule_id):
    path = os.path.join(FIXTURES, f"{rule_id.lower()}_fires.py")
    assert os.path.isfile(path), (
        f"{rule_id} has no firing fixture {os.path.basename(path)}"
    )


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_every_rule_has_a_clean_fixture(rule_id):
    path = os.path.join(FIXTURES, f"{rule_id.lower()}_clean.py")
    assert os.path.isfile(path), (
        f"{rule_id} has no clean fixture {os.path.basename(path)}"
    )


def test_every_rule_appears_in_list_rules(capsys):
    assert main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    listed = {
        line.split()[0] for line in out.splitlines() if line[:1].strip()
    }
    missing = set(RULE_IDS) - listed
    assert not missing, f"rules absent from --list-rules: {sorted(missing)}"


def test_rule_ids_are_unique_and_well_formed():
    assert len(RULE_IDS) == len(set(RULE_IDS))
    for rule_id in RULE_IDS:
        prefix = rule_id.rstrip("0123456789")
        assert prefix and prefix.isupper(), rule_id
        assert rule_id[len(prefix):].isdigit(), rule_id
