"""Reporter tests: text, JSON, and SARIF output shapes."""

import json

from conftest import load_fixture

from repro.statcheck import Analyzer
from repro.statcheck.reporters import (
    RENDERERS,
    render_json,
    render_sarif,
    render_text,
)


def _report():
    return Analyzer(select=["PY001", "PY002"]).analyze(
        [load_fixture("py001_fires.py"), load_fixture("py002_fires.py")]
    )


def test_renderers_registry_is_complete():
    assert set(RENDERERS) == {"text", "json", "sarif"}


def test_text_lists_every_finding_with_location():
    report = _report()
    out = render_text(report)
    lines = out.strip().splitlines()
    # one line per finding plus the trailing summary line
    assert len(lines) == len(report.findings) + 1
    for finding in report.findings:
        assert any(
            f":{finding.line}:" in line and finding.rule in line
            for line in lines
        )
    assert lines[-1].startswith("statcheck: ")
    assert f"{len(report.findings)} findings" in lines[-1]


def test_json_round_trips_findings():
    report = _report()
    payload = json.loads(render_json(report))
    assert payload["files_scanned"] == 2
    assert payload["rules"] == ["PY001", "PY002"]
    assert len(payload["findings"]) == len(report.findings)
    first = payload["findings"][0]
    assert set(first) == {
        "rule", "severity", "path", "line", "col", "message",
    }


def test_sarif_is_valid_2_1_0_shape():
    report = _report()
    doc = json.loads(render_sarif(report))
    assert doc["version"] == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "statcheck"
    rule_ids = {r["id"] for r in driver["rules"]}
    results = run["results"]
    assert len(results) == len(report.findings)
    for result in results:
        assert result["ruleId"] in rule_ids
        assert result["level"] in {"error", "warning"}
        loc = result["locations"][0]["physicalLocation"]
        assert loc["region"]["startLine"] >= 1


def test_clean_report_renders_everywhere():
    report = Analyzer(select=["PY001"]).analyze(
        [load_fixture("py001_clean.py")]
    )
    assert "0 findings" in render_text(report)
    assert json.loads(render_json(report))["findings"] == []
    assert json.loads(render_sarif(report))["runs"][0]["results"] == []


def test_sarif_columns_are_one_based_pinned_document():
    """Regression pin: AST columns are 0-based, SARIF columns are 1-based.

    A finding at col 0 must serialize as startColumn 1; this test pins the
    whole region object so an accidental revert to 0-based columns (or a
    silent region reshape) fails loudly.
    """
    from repro.statcheck.engine import AnalysisReport
    from repro.statcheck.findings import Finding, Severity

    report = AnalysisReport(
        findings=[
            Finding(
                rule="PY001",
                path="src/repro/core/mod.py",
                line=12,
                col=0,
                message="mutable default argument",
                severity=Severity.ERROR,
            ),
            Finding(
                rule="PY002",
                path="src/repro/core/mod.py",
                line=30,
                col=4,
                message="wall-clock call in simulation code",
                severity=Severity.WARNING,
            ),
        ],
        files_scanned=1,
        rules=["PY001", "PY002"],
    )
    doc = json.loads(render_sarif(report))
    regions = [
        result["locations"][0]["physicalLocation"]["region"]
        for result in doc["runs"][0]["results"]
    ]
    assert regions == [
        {"startLine": 12, "startColumn": 1},
        {"startLine": 30, "startColumn": 5},
    ]
