"""Tests for the execution-context model: async-aware call-graph edges,
context reachability, confinement markers, and seeded-bug detection on
the real source tree.
"""

import os

from conftest import IN_SCOPE

from repro.statcheck import Analyzer, SourceFile
from repro.statcheck.callgraph import CallGraph
from repro.statcheck.concurrency import ContextModel, context_model
from repro.statcheck.engine import Project
from repro.statcheck.semantic import SymbolTable

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src")


def _project(*named_sources):
    files = [
        SourceFile.from_source(source, path=f"{module}.py", module=module)
        for module, source in named_sources
    ]
    return Project(files=files)


def _graph(project):
    return CallGraph.build(SymbolTable.build(project))


def _edge_kinds(graph, caller_suffix, callee_suffix):
    return sorted(
        edge.kind
        for edge in graph.edges
        if edge.caller.endswith(caller_suffix)
        and edge.callee.endswith(callee_suffix)
    )


class TestAsyncCallGraphEdges:
    def test_await_edge_kind(self):
        graph = _graph(_project((
            "m",
            "async def helper():\n"
            "    return 1\n"
            "async def top():\n"
            "    return await helper()\n",
        )))
        assert _edge_kinds(graph, "m.top", "m.helper") == ["await"]

    def test_create_task_edge_kind(self):
        graph = _graph(_project((
            "m",
            "import asyncio\n"
            "async def job():\n"
            "    return 1\n"
            "async def spawn():\n"
            "    task = asyncio.create_task(job())\n"
            "    return task\n",
        )))
        assert _edge_kinds(graph, "m.spawn", "m.job") == ["task"]

    def test_run_in_executor_edge_and_thread_entry(self):
        graph = _graph(_project((
            "m",
            "def work():\n"
            "    return 1\n"
            "async def dispatch(loop):\n"
            "    return await loop.run_in_executor(None, work)\n",
        )))
        assert _edge_kinds(graph, "m.dispatch", "m.work") == ["executor"]
        assert "m.work" in graph.thread_entries

    def test_run_in_executor_unwraps_functools_partial(self):
        graph = _graph(_project((
            "m",
            "import functools\n"
            "def work(a, b):\n"
            "    return a + b\n"
            "async def dispatch(loop):\n"
            "    return await loop.run_in_executor(\n"
            "        None, functools.partial(work, 1, b=2)\n"
            "    )\n",
        )))
        assert _edge_kinds(graph, "m.dispatch", "m.work") == ["executor"]

    def test_thread_target_edge_and_entry(self):
        graph = _graph(_project((
            "m",
            "import threading\n"
            "def body():\n"
            "    return 1\n"
            "def start():\n"
            "    t = threading.Thread(target=body)\n"
            "    t.start()\n",
        )))
        assert _edge_kinds(graph, "m.start", "m.body") == ["thread"]
        assert "m.body" in graph.thread_entries

    def test_call_soon_threadsafe_is_a_loop_edge(self):
        graph = _graph(_project((
            "m",
            "def publish(x):\n"
            "    return x\n"
            "def worker(loop, x):\n"
            "    loop.call_soon_threadsafe(publish, x)\n",
        )))
        assert _edge_kinds(graph, "m.worker", "m.publish") == ["loop"]

    def test_outer_special_call_claims_inner_call(self):
        # run_until_complete(self.app.start()) must yield ONE loop-kind
        # edge to start, not an extra direct edge for the inner call;
        # resolving self.app.start needs the type-inference resolver
        graph = context_model(_project((
            "m",
            "class App:\n"
            "    async def start(self):\n"
            "        return 1\n"
            "class Server:\n"
            "    def __init__(self):\n"
            "        self.app = App()\n"
            "    def run(self, loop):\n"
            "        loop.run_until_complete(self.app.start())\n",
        ))).graph
        assert _edge_kinds(graph, "Server.run", "App.start") == ["loop"]


class TestContextModel:
    def test_loop_reaches_through_sync_helpers(self):
        model = context_model(_project((
            "m",
            "def helper():\n"
            "    return 1\n"
            "async def handle():\n"
            "    return helper()\n",
        )))
        assert "m.helper" in model.loop
        assert model.loop["m.helper"] == "m.handle"

    def test_thread_traversal_refuses_loop_hops(self):
        model = context_model(_project((
            "m",
            "import threading\n"
            "def publish(x):\n"
            "    return x\n"
            "def worker(loop, x):\n"
            "    loop.call_soon_threadsafe(publish, x)\n"
            "def start(loop):\n"
            "    t = threading.Thread(target=worker, args=(loop, 1))\n"
            "    t.start()\n",
        )))
        assert "m.worker" in model.thread
        # the hand-back hop is sanctioned: publish stays off the thread map
        assert "m.publish" not in model.thread
        # ...and lands back in loop context instead
        assert "m.publish" in model.loop

    def test_thread_traversal_never_enters_coroutines(self):
        model = context_model(_project((
            "m",
            "import threading\n"
            "async def coro():\n"
            "    return 1\n"
            "def worker():\n"
            "    return coro()\n"
            "def start():\n"
            "    threading.Thread(target=worker).start()\n",
        )))
        assert "m.worker" in model.thread
        assert "m.coro" not in model.thread

    def test_confinement_markers_and_decorators(self):
        model = context_model(_project((
            "m",
            "# statcheck: loop-confined\n"
            "class Store:\n"
            "    def put(self):\n"
            "        pass\n"
            "    # statcheck: thread-safe\n"
            "    def safe(self):\n"
            "        pass\n"
            "def loop_confined(cls):\n"
            "    return cls\n"
            "@loop_confined\n"
            "class Decorated:\n"
            "    pass\n",
        )))
        assert "m.Store" in model.loop_confined
        assert "m.Decorated" in model.loop_confined
        assert "m.Store.safe" in model.thread_safe
        assert "m.Store.put" not in model.thread_safe

    def test_contexts_of_is_sorted_union(self):
        model = context_model(_project((
            "m",
            "import threading\n"
            "def shared():\n"
            "    return 1\n"
            "async def handle():\n"
            "    return shared()\n"
            "def start():\n"
            "    threading.Thread(target=shared).start()\n",
        )))
        assert model.contexts_of("m.shared") == ("loop", "thread")
        assert model.contexts_of("m.start") == ()

    def test_model_is_memoized_per_project(self):
        project = _project(("m", "async def f():\n    return 1\n"))
        assert context_model(project) is context_model(project)
        assert isinstance(context_model(project), ContextModel)


def _load_src_tree(mutate_path=None, mutate=None):
    """Parse the serve/engine/obs/harness subtree, optionally swapping in
    a mutated copy of one file (the seeded-bug idiom: break the real
    source in memory, prove the rule catches it)."""
    files = []
    for package in ("serve", "engine", "obs", "harness"):
        directory = os.path.join(SRC, "repro", package)
        for name in sorted(os.listdir(directory)):
            if not name.endswith(".py"):
                continue
            path = os.path.join(directory, name)
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            if mutate_path is not None and path.endswith(mutate_path):
                mutated = mutate(source)
                assert mutated != source, "seed marker not found"
                source = mutated
            files.append(SourceFile.from_source(source, path=path))
    return files


class TestSeededBugs:
    def test_async001_catches_seeded_sleep_in_handler(self):
        def seed(source):
            marker = (
                "    async def _handle_health(self, request: Request)"
                " -> Response:\n"
            )
            return source.replace(
                marker, marker + "        time.sleep(0.01)\n"
            )

        files = _load_src_tree("serve/app.py", seed)
        report = Analyzer(select=["ASYNC001"]).analyze(files)
        assert any(
            f.rule == "ASYNC001"
            and "time.sleep" in f.message
            and "_handle_health" in f.message
            for f in report.findings
        ), [f.message for f in report.findings]

    def test_async003_catches_seeded_jobstore_call_in_thread(self):
        def seed(source):
            marker = "        self.app = ServeApp(self.config)\n"
            return source.replace(
                marker, marker + '        self.app.store.create("run", {})\n'
            )

        files = _load_src_tree("serve/testing.py", seed)
        report = Analyzer(select=["ASYNC003"]).analyze(files)
        assert any(
            f.rule == "ASYNC003"
            and "JobStore" in f.message
            and f.path.endswith("testing.py")
            for f in report.findings
        ), [f.message for f in report.findings]

    def test_unmutated_subtree_is_clean(self):
        files = _load_src_tree()
        report = Analyzer(
            select=["ASYNC001", "ASYNC002", "ASYNC003", "LOCK001",
                    "MET001", "SPAN001", "SPAN002"]
        ).analyze(files)
        assert report.findings == []
