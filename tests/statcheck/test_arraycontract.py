"""Array-semantics layer: abstract-domain units + seeded bugs in the
real batch core.

The fixture tests pin each rule's behavior on synthetic snippets; these
tests aim the rules at the production ``soa.py``/``batchcore.py`` pair:
the shipped sources must be clean, and re-introducing each bug class the
layer exists for (transposed axes, a float32 accumulator, a unit mix,
deleting one side of a paired vector/scalar update) must produce exactly
the expected finding.
"""

import os

import pytest

from repro.statcheck.arrays import (
    Axis,
    broadcast_shapes,
    combine_axes,
    promote,
)
from repro.statcheck.engine import Analyzer, Project, SourceFile

REPO_SRC = os.path.join(
    os.path.dirname(__file__), os.pardir, os.pardir, "src"
)
SOA_PATH = os.path.join(REPO_SRC, "repro", "simcore", "soa.py")
BATCH_PATH = os.path.join(REPO_SRC, "repro", "simcore", "batchcore.py")


def _read(path):
    with open(path, encoding="utf-8") as handle:
        return handle.read()


def _findings(rule_id, soa_source, batch_source):
    files = [
        SourceFile.from_source(
            soa_source, path=SOA_PATH, module="repro.simcore.soa"
        ),
        SourceFile.from_source(
            batch_source, path=BATCH_PATH, module="repro.simcore.batchcore"
        ),
    ]
    analyzer = Analyzer(select=[rule_id])
    report = analyzer.analyze(files)
    return [f for f in report.findings if f.rule == rule_id]


# -- abstract domain -------------------------------------------------------


def test_promote_is_max_over_the_lattice():
    assert promote("float32", "float64") == "float64"
    assert promote("bool", "int64") == "int64"
    assert promote("int64", "float32") == "float32"
    assert promote(None, "float64") is None
    assert promote("float64", None) is None


def test_combine_axes_size_one_broadcasts():
    merged, ok = combine_axes(Axis(None, 1), Axis("lanes", None))
    assert ok and merged == Axis("lanes", None)


def test_combine_axes_known_sizes_must_match():
    _, ok = combine_axes(Axis(None, 3), Axis(None, 4))
    assert not ok
    merged, ok = combine_axes(Axis(None, 3), Axis(None, 3))
    assert ok and merged.size == 3


def test_combine_axes_named_axes_must_match():
    _, ok = combine_axes(Axis("lanes", None), Axis("doms", None))
    assert not ok


def test_combine_axes_name_vs_size_fails_open():
    # a named axis of unknown size could be that size: no finding
    _, ok = combine_axes(Axis("lanes", None), Axis(None, 3))
    assert ok


def test_broadcast_shapes_right_aligns_and_pads():
    lanes = Axis("lanes", None)
    shape, reason = broadcast_shapes(
        (lanes, Axis(None, 3)), (Axis(None, 3),)
    )
    assert reason is None
    assert shape == (lanes, Axis(None, 3))


def test_broadcast_shapes_reports_provable_mismatch():
    shape, reason = broadcast_shapes(
        (Axis("lanes", None), Axis(None, 3)),
        (Axis("doms", None), Axis(None, 3)),
    )
    assert shape is None
    assert "lanes" in reason and "doms" in reason


# -- the shipped batch core is clean ---------------------------------------


@pytest.mark.parametrize("rule_id", ["SOA001", "SOA002", "SOA003", "VEC001"])
def test_shipped_batch_core_is_clean(rule_id):
    assert _findings(rule_id, _read(SOA_PATH), _read(BATCH_PATH)) == []


# -- seeded bugs in the real sources ---------------------------------------


def test_seeded_transposed_axes_fire_soa001():
    # a transposed [domains, lanes] operand against the [lanes, domains]
    # slew budget in the hot path is a provable named-axis mismatch
    soa = _read(SOA_PATH).replace(
        "np.minimum(self.max_move, delta)",
        "np.minimum(self.max_move.T, self.max_move)",
    )
    assert soa != _read(SOA_PATH)
    findings = _findings("SOA001", soa, _read(BATCH_PATH))
    assert findings, "transposed max_move must break broadcasting"
    assert any("broadcast" in f.message for f in findings)


def test_seeded_float32_accumulator_fires_soa002():
    soa = _read(SOA_PATH).replace(
        "self.bg_acc = np.zeros((length, 4), dtype=_F64)",
        "self.bg_acc = np.zeros((length, 4), dtype=np.float32)",
    )
    assert soa != _read(SOA_PATH)
    findings = _findings("SOA002", soa, _read(BATCH_PATH))
    assert findings, "a float32 energy accumulator must be a finding"
    assert any("float32" in f.message for f in findings)


def test_seeded_unit_mix_fires_soa003():
    # frequency + sampling period, elementwise over the lane axis
    soa = _read(SOA_PATH).replace(
        "self.fsum = self.fsum + cur",
        "self.fsum = self.fsum + cur + self.dt",
    )
    assert soa != _read(SOA_PATH)
    findings = _findings("SOA003", soa, _read(BATCH_PATH))
    assert findings, "adding a time to a frequency array must fire"
    assert any(
        "frequency" in f.message and "time" in f.message for f in findings
    )


def test_seeded_missing_scalar_writeback_fires_vec001():
    # delete the scalar side of the paired travel update
    batch = _read(BATCH_PATH).replace(
        "regulator.total_travel_ghz = travel", "pass"
    )
    assert batch != _read(BATCH_PATH)
    findings = _findings("VEC001", _read(SOA_PATH), batch)
    assert len(findings) == 1
    assert "self.travel" in findings[0].message
    assert "total_travel_ghz" in findings[0].message


def test_seeded_missing_vector_seed_fires_vec001():
    # the driver no longer seeds fsum from the lane's _freq_sum: both
    # the orphaned absorb write and the unpaired driver array surface
    soa = _read(SOA_PATH).replace("lane._freq_sum[d]", "lane._freq_done[d]")
    assert soa != _read(SOA_PATH)
    messages = [
        f.message for f in _findings("VEC001", soa, _read(BATCH_PATH))
    ]
    assert any("_freq_sum" in m and "_absorb" in m for m in messages)


def test_stale_marker_is_a_finding():
    soa = _read(SOA_PATH).replace(
        "vector-state=BatchMCDProcessor", "vector-state=NoSuchLane"
    )
    assert soa != _read(SOA_PATH)
    findings = _findings("VEC001", soa, _read(BATCH_PATH))
    assert len(findings) == 1
    assert "NoSuchLane" in findings[0].message


def test_stale_driver_internal_entry_is_a_finding():
    soa = _read(SOA_PATH).replace('"has_prev",', '"has_prev",\n"ghost",')
    assert soa != _read(SOA_PATH)
    findings = _findings("VEC001", soa, _read(BATCH_PATH))
    assert len(findings) == 1
    assert "ghost" in findings[0].message


def test_contradictory_driver_internal_entry_is_a_finding():
    # exempting an array whose source attribute IS absorbed is drift in
    # the other direction: the exemption hides a live pairing
    soa = _read(SOA_PATH).replace('"has_prev",', '"has_prev",\n"travel",')
    assert soa != _read(SOA_PATH)
    findings = _findings("VEC001", soa, _read(BATCH_PATH))
    assert len(findings) == 1
    assert "travel" in findings[0].message
    assert "exempt" in findings[0].message
