"""CLI tests: exit-code contract, formats, and repro-dvfs integration."""

import json
import os

import pytest

import repro.cli as repro_cli
from repro.statcheck import cli as statcheck_cli
from repro.statcheck.cli import EXIT_CLEAN, EXIT_ERROR, EXIT_FINDINGS, main


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
    return str(tmp_path)


@pytest.fixture
def dirty_tree(tmp_path):
    (tmp_path / "bad.py").write_text(
        "def f(memo={}):\n    return memo\n", encoding="utf-8"
    )
    return str(tmp_path)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([clean_tree]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main([dirty_tree]) == EXIT_FINDINGS
        assert "PY001" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert main(["/no/such/path-xyz"]) == EXIT_ERROR
        assert "statcheck" in capsys.readouterr().err

    def test_unknown_rule_is_usage_error(self, clean_tree, capsys):
        assert main([clean_tree, "--select", "NOPE999"]) == EXIT_ERROR
        assert "NOPE999" in capsys.readouterr().err

    def test_broken_pipe_is_quiet(self, clean_tree, capfd, monkeypatch):
        """`check ... | head` must not dump a traceback when head exits."""

        def raise_epipe(*args, **kwargs):
            raise BrokenPipeError(32, "Broken pipe")

        monkeypatch.setattr(statcheck_cli.Analyzer, "analyze_paths", raise_epipe)
        monkeypatch.setattr(
            statcheck_cli.IncrementalAnalyzer, "analyze_paths", raise_epipe
        )
        assert main([clean_tree]) == EXIT_ERROR
        err = capfd.readouterr().err
        assert "Traceback" not in err
        assert "internal error" not in err

    def test_analyzer_crash_exits_two(self, clean_tree, capsys, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("synthetic crash")

        monkeypatch.setattr(statcheck_cli.Analyzer, "analyze", boom)
        monkeypatch.setattr(
            statcheck_cli.IncrementalAnalyzer, "analyze_paths", boom
        )
        assert main([clean_tree]) == EXIT_ERROR
        err = capsys.readouterr().err
        assert "internal error" in err
        assert "synthetic crash" in err


class TestFormatsAndListing:
    def test_json_format(self, dirty_tree, capsys):
        assert main([dirty_tree, "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "PY001"

    def test_sarif_format(self, clean_tree, capsys):
        assert main([clean_tree, "--format", "sarif"]) == EXIT_CLEAN
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "CTL001", "CACHE001",
            "POOL001", "OBS001", "PY001", "PY002",
        ):
            assert rule_id in out

    def test_select_and_ignore(self, dirty_tree, capsys):
        assert main([dirty_tree, "--ignore", "PY001"]) == EXIT_CLEAN
        assert main([dirty_tree, "--select", "PY002"]) == EXIT_CLEAN


class TestReproDvfsSubcommand:
    def test_check_subcommand_clean(self, clean_tree, capsys):
        assert repro_cli.main(["check", clean_tree]) == EXIT_CLEAN
        assert "0 findings" in capsys.readouterr().out

    def test_check_subcommand_findings(self, dirty_tree):
        assert repro_cli.main(["check", dirty_tree]) == EXIT_FINDINGS

    def test_check_subcommand_json(self, dirty_tree, capsys):
        code = repro_cli.main(["check", dirty_tree, "--format", "json"])
        assert code == EXIT_FINDINGS
        assert json.loads(capsys.readouterr().out)["findings"]


class TestModuleEntryPoint:
    def test_python_m_invocation(self, clean_tree):
        import subprocess
        import sys

        env = dict(os.environ)
        src = os.path.join(os.path.dirname(repro_cli.__file__), os.pardir)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.run(
            [sys.executable, "-m", "repro.statcheck", clean_tree],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == EXIT_CLEAN
        assert "0 findings" in proc.stdout


class TestChangedOnlyWidening:
    @pytest.fixture
    def dep_chain(self, tmp_path):
        """c imports b imports a; d is unrelated; b carries a PY001 bug."""
        (tmp_path / "a.py").write_text("VALUE = 1\n", encoding="utf-8")
        (tmp_path / "b.py").write_text(
            "import a\n\n\ndef f(memo={}):\n    return memo\n",
            encoding="utf-8",
        )
        (tmp_path / "c.py").write_text("import b\n", encoding="utf-8")
        (tmp_path / "d.py").write_text("OTHER = 2\n", encoding="utf-8")
        return tmp_path

    def test_widening_follows_reverse_imports_transitively(self, dep_chain):
        changed = [str(dep_chain / "a.py")]
        widened = statcheck_cli._widen_changed_paths(
            changed, [str(dep_chain)]
        )
        assert widened == sorted(
            str(dep_chain / name) for name in ("a.py", "b.py", "c.py")
        )

    def test_widening_keeps_unrelated_files_out(self, dep_chain):
        changed = [str(dep_chain / "b.py")]
        widened = statcheck_cli._widen_changed_paths(
            changed, [str(dep_chain)]
        )
        assert str(dep_chain / "c.py") in widened
        assert str(dep_chain / "a.py") not in widened
        assert str(dep_chain / "d.py") not in widened

    def test_widening_fails_open_on_unreadable_roots(self, tmp_path):
        changed = [str(tmp_path / "gone.py"), str(tmp_path / "gone.py")]
        widened = statcheck_cli._widen_changed_paths(
            changed, [str(tmp_path / "no-such-dir")]
        )
        assert widened == [str(tmp_path / "gone.py")]

    def test_changed_only_reports_findings_in_dependents(
        self, dep_chain, capsys, monkeypatch
    ):
        """Changing only a.py must still surface b.py's per-file finding:
        b's import-resolved facts were computed against the old a."""
        monkeypatch.setattr(
            statcheck_cli,
            "_changed_paths",
            lambda base: [str(dep_chain / "a.py")],
        )
        code = main([str(dep_chain), "--changed-only", "HEAD~1", "--json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        files = {f["path"] for f in payload["findings"]}
        assert str(dep_chain / "b.py") in files

    def test_changed_only_still_skips_unaffected_files(
        self, dep_chain, capsys, monkeypatch
    ):
        """A per-file finding in an unrelated file stays filtered out."""
        (dep_chain / "d.py").write_text(
            "def g(memo={}):\n    return memo\n", encoding="utf-8"
        )
        monkeypatch.setattr(
            statcheck_cli,
            "_changed_paths",
            lambda base: [str(dep_chain / "a.py")],
        )
        code = main([str(dep_chain), "--changed-only", "HEAD~1", "--json"])
        assert code == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        files = {f["path"] for f in payload["findings"]}
        assert str(dep_chain / "d.py") not in files
        assert str(dep_chain / "b.py") in files


class TestStatsFlag:
    def test_stats_goes_to_stderr_not_stdout(self, clean_tree, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        code = main([clean_tree, "--stats", "--cache-file", cache])
        assert code == EXIT_CLEAN
        out, err = capsys.readouterr()
        assert "statcheck stats:" in err
        assert "statcheck stats:" not in out
        assert "files=1" in err
        assert "wall_s=" in err

    def test_stats_reports_warm_cache_ratio(self, clean_tree, capsys, tmp_path):
        cache = str(tmp_path / "cache.json")
        main([clean_tree, "--stats", "--cache-file", cache])
        capsys.readouterr()
        main([clean_tree, "--stats", "--cache-file", cache])
        assert "cache_hit_ratio=100%" in capsys.readouterr().err

    def test_stats_counts_findings_per_rule(self, dirty_tree, capsys):
        code = main([dirty_tree, "--stats", "--no-incremental"])
        assert code == EXIT_FINDINGS
        assert "findings=PY001:1" in capsys.readouterr().err

    def test_stats_keeps_json_stdout_pure(self, dirty_tree, capsys):
        main([dirty_tree, "--stats", "--json", "--no-incremental"])
        out, err = capsys.readouterr()
        assert json.loads(out)["findings"]
        assert "statcheck stats:" in err
