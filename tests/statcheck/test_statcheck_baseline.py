"""Baseline ratchet tests: screening semantics and the CLI flag flows."""

import json

import pytest

from repro.statcheck import cli as statcheck_cli
from repro.statcheck.baseline import Baseline
from repro.statcheck.findings import Finding, Severity


def _finding(rule="PY001", path="src/mod.py", line=3, message="bad default"):
    return Finding(
        rule=rule,
        path=path,
        line=line,
        col=0,
        message=message,
        severity=Severity.ERROR,
    )


class TestScreening:
    def test_line_shift_is_grandfathered(self):
        baseline = Baseline.from_findings([_finding(line=3)])
        screened = baseline.screen([_finding(line=40)])
        assert screened.new == []
        assert len(screened.grandfathered) == 1
        assert screened.stale == 0

    def test_new_finding_is_reported(self):
        baseline = Baseline.from_findings([_finding()])
        fresh = _finding(rule="CTL001", message="hysteresis constant")
        screened = baseline.screen([_finding(), fresh])
        assert screened.new == [fresh]
        assert len(screened.grandfathered) == 1

    def test_duplicate_occurrence_consumes_the_multiset(self):
        # one baselined occurrence, two in the report: the second is new
        baseline = Baseline.from_findings([_finding(line=3)])
        screened = baseline.screen([_finding(line=3), _finding(line=9)])
        assert len(screened.grandfathered) == 1
        assert len(screened.new) == 1

    def test_fixed_finding_counts_as_stale(self):
        baseline = Baseline.from_findings([_finding(), _finding(rule="PY002")])
        screened = baseline.screen([_finding()])
        assert screened.new == []
        assert screened.stale == 1

    def test_windows_paths_normalise_into_fingerprints(self):
        baseline = Baseline.from_findings(
            [_finding(path="src\\repro\\mod.py")]
        )
        screened = baseline.screen([_finding(path="src/repro/mod.py")])
        assert screened.new == []

    def test_dump_load_roundtrip(self, tmp_path):
        baseline = Baseline.from_findings(
            [_finding(), _finding(), _finding(rule="PY002")]
        )
        target = tmp_path / "baseline.json"
        baseline.dump(str(target))
        assert Baseline.load(str(target)).counts == baseline.counts

    def test_load_rejects_foreign_json(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text('{"something": "else"}', encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(str(target))

    def test_to_dict_summary_shape(self):
        baseline = Baseline.from_findings([_finding()])
        screened = baseline.screen([_finding(), _finding(rule="PY002")])
        assert screened.to_dict() == {
            "new": 1,
            "grandfathered": 1,
            "stale_entries": 0,
        }


@pytest.fixture
def firing_tree(tmp_path):
    """A tiny package that trips PY001 (mutable default argument)."""
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        "def f(memo={}):\n    return memo\n", encoding="utf-8"
    )
    return tmp_path


def _cli(args, cwd, capsys):
    import os

    old = os.getcwd()
    os.chdir(cwd)
    try:
        code = statcheck_cli.main(["--no-incremental", *args])
    finally:
        os.chdir(old)
    return code, capsys.readouterr()


class TestBaselineCli:
    def test_write_baseline_then_check_is_clean(self, firing_tree, capsys):
        code, _ = _cli(
            ["src", "--write-baseline", "base.json"], firing_tree, capsys
        )
        assert code == 0
        with open(firing_tree / "base.json", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["entries"], "expected the PY001 finding in the baseline"

        code, captured = _cli(
            ["src", "--baseline", "base.json", "--json"], firing_tree, capsys
        )
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["findings"] == []
        assert payload["baseline"]["grandfathered"] == 1
        assert payload["baseline"]["new"] == 0

    def test_new_finding_fails_against_baseline(self, firing_tree, capsys):
        _cli(["src", "--write-baseline", "base.json"], firing_tree, capsys)
        (firing_tree / "src" / "mod.py").write_text(
            "def f(memo={}):\n"
            "    return memo\n"
            "def g(bag=[]):\n"
            "    return bag\n",
            encoding="utf-8",
        )
        code, captured = _cli(
            ["src", "--baseline", "base.json", "--json"], firing_tree, capsys
        )
        assert code == 1
        payload = json.loads(captured.out)
        assert len(payload["findings"]) == 1
        assert payload["baseline"]["new"] == 1
        assert payload["baseline"]["grandfathered"] == 1

    def test_missing_baseline_file_is_a_usage_error(
        self, firing_tree, capsys
    ):
        code, captured = _cli(
            ["src", "--baseline", "absent.json"], firing_tree, capsys
        )
        assert code == 2
        assert "absent.json" in captured.err


class TestRequireJustificationCli:
    def test_bare_suppression_fails(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "def f(memo={}):  # statcheck: disable=PY001\n"
            "    return memo\n",
            encoding="utf-8",
        )
        code, captured = _cli(
            ["src", "--require-justification"], tmp_path, capsys
        )
        assert code == 1
        assert "SUP001" in captured.out

    def test_justified_suppression_passes(self, tmp_path, capsys):
        src = tmp_path / "src"
        src.mkdir()
        (src / "mod.py").write_text(
            "def f(memo={}):  "
            "# statcheck: disable=PY001 -- shared memo is the API\n"
            "    return memo\n",
            encoding="utf-8",
        )
        code, _ = _cli(["src", "--require-justification"], tmp_path, capsys)
        assert code == 0
