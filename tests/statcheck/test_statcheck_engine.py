"""Engine-level tests: suppressions, scoping, parse errors, rule selection."""

import pytest

from conftest import IN_SCOPE, load_fixture

from repro.statcheck import Analyzer, SourceFile
from repro.statcheck.engine import PARSE_ERROR_RULE


def analyze(files, **kwargs):
    return Analyzer(**kwargs).analyze(files)


class TestSuppressions:
    def test_line_pragma_suppresses_exact_line(self):
        report = analyze([load_fixture("suppressed.py")])
        assert report.findings == []
        assert report.suppressed == 3

    def test_pragma_on_wrong_line_does_not_suppress(self):
        source = (
            "import time\n"
            "# statcheck: disable=DET002\n"
            "def f():\n"
            "    return time.time()\n"
        )
        report = analyze(
            [SourceFile.from_source(source, path="x.py", module=IN_SCOPE)]
        )
        assert [f.rule for f in report.findings] == ["DET002"]
        assert report.suppressed == 0

    def test_file_pragma_suppresses_whole_file(self):
        source = (
            "# statcheck: disable-file=DET002\n"
            "import time\n"
            "def f():\n"
            "    return time.time() + time.monotonic()\n"
        )
        report = analyze(
            [SourceFile.from_source(source, path="x.py", module=IN_SCOPE)]
        )
        assert report.findings == []
        assert report.suppressed == 2

    def test_pragma_inside_string_literal_is_ignored(self):
        source = (
            "import time\n"
            "def f():\n"
            '    note = "# statcheck: disable=DET002"\n'
            "    return time.time(), note\n"
        )
        report = analyze(
            [SourceFile.from_source(source, path="x.py", module=IN_SCOPE)]
        )
        assert [f.rule for f in report.findings] == ["DET002"]

    def test_disable_all_wildcard(self):
        source = (
            "import time\n"
            "def f(memo={}):  # statcheck: disable=all\n"
            "    return memo\n"
        )
        report = analyze(
            [SourceFile.from_source(source, path="x.py", module=IN_SCOPE)]
        )
        assert report.findings == []
        assert report.suppressed == 1


class TestParseErrors:
    def test_syntax_error_yields_e001(self):
        bad = SourceFile.from_source("def f(:\n", path="bad.py")
        report = analyze([bad])
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
        assert not report.ok

    def test_parse_error_does_not_abort_other_files(self):
        bad = SourceFile.from_source("def f(:\n", path="bad.py")
        good = SourceFile.from_source(
            "import time\ndef f():\n    return time.time()\n",
            path="good.py",
            module=IN_SCOPE,
        )
        report = analyze([bad, good])
        assert sorted(f.rule for f in report.findings) == [
            "DET002",
            PARSE_ERROR_RULE,
        ]


class TestRuleSelection:
    def test_select_runs_only_named_rules(self):
        report = analyze([load_fixture("py001_fires.py")], select=["PY002"])
        assert report.findings == []
        assert report.rules == ["PY002"]

    def test_ignore_removes_named_rules(self):
        report = analyze([load_fixture("py001_fires.py")], ignore=["PY001"])
        assert "PY001" not in report.rules
        assert report.findings == []

    @pytest.mark.parametrize("kwargs", [
        {"select": ["NOPE999"]},
        {"ignore": ["NOPE999"]},
    ])
    def test_unknown_rule_id_raises(self, kwargs):
        with pytest.raises(ValueError, match="NOPE999"):
            Analyzer(**kwargs)


class TestReportShape:
    def test_findings_are_sorted_and_counted(self):
        report = analyze([
            load_fixture("py002_fires.py"),
            load_fixture("py001_fires.py"),
        ])
        assert report.files_scanned == 2
        keys = [f.sort_key for f in report.findings]
        assert keys == sorted(keys)
        assert report.ok is False

    def test_clean_report_is_ok(self):
        report = analyze([load_fixture("py001_clean.py")])
        assert report.ok is True
        assert report.findings == []
