"""End-to-end gate: the analyzer must exit clean on the real source tree.

This is the same invocation CI runs (`repro-dvfs check src`), so a
failure here means a rule regressed or new code introduced a finding.
"""

import os

from repro.statcheck import Analyzer, all_rules
from repro.statcheck.cli import EXIT_CLEAN, main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_is_clean():
    assert main([SRC]) == EXIT_CLEAN


def test_at_least_eight_rules_active():
    rules = all_rules()
    assert len(rules) >= 8
    assert len({rule.id for rule in rules}) == len(rules)


def test_report_covers_whole_tree():
    report = Analyzer().analyze_paths([SRC])
    assert report.files_scanned >= 60
    assert report.findings == []
    # the known, justified suppressions in mcd/processor.py
    assert report.suppressed >= 5


def test_analyzer_is_clean_on_its_own_source():
    statcheck_dir = os.path.join(SRC, "repro", "statcheck")
    report = Analyzer().analyze_paths([statcheck_dir])
    assert report.findings == []
