"""End-to-end gate: the analyzer must exit clean on the real source tree.

This is the same invocation CI runs (`repro-dvfs check src`), so a
failure here means a rule regressed or new code introduced a finding.
"""

import os

from repro.statcheck import Analyzer, all_rules
from repro.statcheck.cli import EXIT_CLEAN, main

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
)
SRC = os.path.join(REPO_ROOT, "src")


def test_src_tree_is_clean():
    assert main([SRC]) == EXIT_CLEAN


def test_at_least_twenty_rules_active():
    rules = all_rules()
    assert len(rules) >= 20
    assert len({rule.id for rule in rules}) == len(rules)


def test_concurrency_rules_are_registered():
    ids = {rule.id for rule in all_rules()}
    expected = {
        "ASYNC001", "ASYNC002", "ASYNC003",
        "LOCK001", "MET001", "SPAN001", "SPAN002",
    }
    assert expected <= ids


def test_report_covers_whole_tree():
    report = Analyzer().analyze_paths([SRC])
    assert report.files_scanned >= 60
    assert report.findings == []
    # the known, justified suppressions in mcd/processor.py
    assert report.suppressed >= 5


def test_analyzer_is_clean_on_its_own_source():
    statcheck_dir = os.path.join(SRC, "repro", "statcheck")
    report = Analyzer().analyze_paths([statcheck_dir])
    assert report.findings == []


def test_warm_incremental_run_hits_cache(tmp_path):
    """A no-change rerun over src must serve >=80% of files from cache
    (in fact 100%: the project-level entry replays wholesale)."""
    from repro.statcheck.incremental import IncrementalAnalyzer

    cache = str(tmp_path / "cache.json")
    IncrementalAnalyzer(Analyzer(), cache_path=cache).analyze_paths([SRC])
    report = IncrementalAnalyzer(Analyzer(), cache_path=cache).analyze_paths(
        [SRC]
    )
    assert report.incremental is not None
    assert report.incremental["hit_ratio"] >= 0.8
