"""Per-rule positive/negative tests over the fixture snippets.

Every rule must both fire on its positive fixture (at the expected
lines) and stay silent on its negative fixture -- the acceptance bar for
shipping a rule at all.
"""

import pytest

from conftest import IN_SCOPE, OUT_OF_SCOPE, findings_for

#: (rule, firing fixture, expected lines, clean fixture)
RULE_CASES = [
    ("DET001", "det001_fires.py", [10, 14, 18, 22], "det001_clean.py"),
    ("DET002", "det002_fires.py", [9, 13, 17], "det002_clean.py"),
    ("DET003", "det003_fires.py", [8, 14], "det003_clean.py"),
    ("CTL001", "ctl001_fires.py", [5, 9, 11, 15], "ctl001_clean.py"),
    ("CACHE001", "cache001_fires.py", [11], "cache001_clean.py"),
    ("POOL001", "pool001_fires.py", [13, 14], "pool001_clean.py"),
    ("OBS001", "obs001_fires.py", [5, 15, 16], "obs001_clean.py"),
    ("PY001", "py001_fires.py", [6, 11, 15, 19], "py001_fires.py"),
    ("PY002", "py002_fires.py", [8, 16, 23], "py002_clean.py"),
    (
        "UNIT001",
        "unit001_fires.py",
        [10, 15, 20, 24, 29, 33, 37, 42],
        "unit001_clean.py",
    ),
    ("SIM001", "sim001_fires.py", [23], "sim001_clean.py"),
    # transitive pairing: Batch* derives from the reference via Fast*
    ("SIM001", "sim001_batch_fires.py", [37], "sim001_clean.py"),
    ("RACE001", "race001_fires.py", [16, 17, 18], "race001_clean.py"),
    ("ASYNC001", "async001_fires.py", [17, 22, 23, 24, 33], "async001_clean.py"),
    ("ASYNC002", "async002_fires.py", [7, 8, 12], "async002_clean.py"),
    ("ASYNC003", "async003_fires.py", [22, 27, 30, 33], "async003_clean.py"),
    ("LOCK001", "lock001_fires.py", [18, 19], "lock001_clean.py"),
    ("MET001", "met001_fires.py", [11, 13, 16], "met001_clean.py"),
    ("SPAN001", "span001_fires.py", [7, 13], "span001_clean.py"),
    ("SPAN002", "span002_fires.py", [5, 10], "span002_clean.py"),
    ("VEC001", "vec001_fires.py", [22, 30], "vec001_clean.py"),
]

#: (rule, firing fixture, expected lines, clean fixture) for the array
#: rules, which scope to repro.simcore like PERF001 does
SOA_RULE_CASES = [
    ("SOA001", "soa001_fires.py", [9, 14, 20], "soa001_clean.py"),
    ("SOA002", "soa002_fires.py", [9, 16, 22], "soa002_clean.py"),
    ("SOA003", "soa003_fires.py", [9, 15, 21], "soa003_clean.py"),
]


@pytest.mark.parametrize(
    "rule_id,fixture,lines",
    [(rule, fires, lines) for rule, fires, lines, _ in RULE_CASES],
)
def test_rule_fires_at_expected_lines(rule_id, fixture, lines):
    findings = findings_for(fixture, rule_id)
    assert sorted(f.line for f in findings) == lines
    for finding in findings:
        assert finding.rule == rule_id
        assert finding.message


@pytest.mark.parametrize(
    "rule_id,fixture",
    [
        (rule, clean)
        for rule, _, _, clean in RULE_CASES
        if clean.endswith("_clean.py")
    ],
)
def test_rule_is_silent_on_clean_fixture(rule_id, fixture):
    assert findings_for(fixture, rule_id) == []


def test_py001_has_no_clean_false_positives():
    assert findings_for("py001_clean.py", "PY001") == []


#: PERF001 scopes to the simulator packages, not repro.core, so it gets
#: its own module path instead of the shared IN_SCOPE.
PERF_SCOPE_MODULE = "repro.simcore.fixture"


def test_perf001_fires_on_every_hot_loop_allocation():
    findings = findings_for(
        "perf001_fires.py", "PERF001", module=PERF_SCOPE_MODULE
    )
    assert sorted(f.line for f in findings) == [8, 9, 10, 11, 19, 20, 30, 31]
    messages = " | ".join(f.message for f in findings)
    for kind in ("dict literal", "list literal", "set literal",
                 "list comprehension", "dict comprehension",
                 "dict() call", "list() call", "set() call"):
        assert kind in messages, f"expected a {kind} finding"


def test_perf001_silent_on_clean_fixture():
    # covers: pre-loop setup allocations, non-hot functions, nested defs,
    # and the justified cold-branch suppression
    assert (
        findings_for("perf001_clean.py", "PERF001", module=PERF_SCOPE_MODULE)
        == []
    )


@pytest.mark.parametrize(
    "rule_id,fixture,lines",
    [(rule, fires, lines) for rule, fires, lines, _ in SOA_RULE_CASES],
)
def test_soa_rule_fires_at_expected_lines(rule_id, fixture, lines):
    findings = findings_for(fixture, rule_id, module=PERF_SCOPE_MODULE)
    assert sorted(f.line for f in findings) == lines
    for finding in findings:
        assert finding.rule == rule_id
        assert finding.message


@pytest.mark.parametrize(
    "rule_id,fixture",
    [(rule, clean) for rule, _, _, clean in SOA_RULE_CASES],
)
def test_soa_rule_is_silent_on_clean_fixture(rule_id, fixture):
    assert findings_for(fixture, rule_id, module=PERF_SCOPE_MODULE) == []


@pytest.mark.parametrize("rule_id,fixture", [
    (rule, fires) for rule, fires, _, _ in SOA_RULE_CASES
])
def test_soa_rules_scope_to_simcore(rule_id, fixture):
    """Array rules stay quiet outside repro.simcore: analysis packages
    use numpy for post-processing, where these contracts don't apply."""
    assert findings_for(fixture, rule_id, module=IN_SCOPE) == []
    assert findings_for(fixture, rule_id, module=OUT_OF_SCOPE) == []


def test_perf001_scopes_to_simulator_packages():
    # repro.core is hot-rule territory for DET001 but not for PERF001
    assert findings_for("perf001_fires.py", "PERF001", module=IN_SCOPE) == []
    assert (
        findings_for("perf001_fires.py", "PERF001", module=OUT_OF_SCOPE) == []
    )
    assert findings_for(
        "perf001_fires.py", "PERF001", module="repro.mcd.fixture"
    )


@pytest.mark.parametrize("rule_id,fixture", [
    ("DET001", "det001_fires.py"),
    ("DET002", "det002_fires.py"),
    ("CTL001", "ctl001_fires.py"),
])
def test_scoped_rules_ignore_out_of_scope_modules(rule_id, fixture):
    """The same firing source produces nothing outside the rule's scope."""
    assert findings_for(fixture, rule_id, module=OUT_OF_SCOPE) == []


def test_unscoped_rules_apply_everywhere():
    assert findings_for("py001_fires.py", "PY001", module=OUT_OF_SCOPE)


def test_obs001_bidirectional_messages():
    findings = findings_for("obs001_fires.py", "OBS001")
    messages = " | ".join(f.message for f in findings)
    assert "orphan" in messages  # schema with no emitter
    assert "no schema registered" in messages  # emitter with no schema
    assert "string literal" in messages  # dynamic kind rejected


def test_obs001_inactive_without_a_schema_registry():
    """Scanning a subtree without EVENT_SCHEMAS must not false-positive."""
    findings = findings_for("py001_fires.py", "OBS001")
    assert findings == []


def test_cache001_missing_method_is_a_finding():
    from repro.statcheck import Analyzer, SourceFile

    source = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class SweepJob:\n"
        "    seed: int = 0\n"
    )
    report = Analyzer(select=["CACHE001"]).analyze(
        [SourceFile.from_source(source, path="job.py", module=IN_SCOPE)]
    )
    assert len(report.findings) == 1
    assert "canonical_dict" in report.findings[0].message


class TestSemanticRuleDetails:
    """Behaviours of the semantic rules beyond the fixture tables."""

    def test_sim001_fires_when_freq_table_write_is_deleted(self, fixtures_dir):
        """Deleting the frequency-table carry from an otherwise-complete
        fast core must produce exactly the missing-attribute finding."""
        import os

        from repro.statcheck import Analyzer, SourceFile

        path = os.path.join(fixtures_dir, "sim001_clean.py")
        with open(path, encoding="utf-8") as handle:
            clean = handle.read()
        # drop every freq_sum line from the fast class only
        kept = []
        in_fast = False
        for line in clean.splitlines():
            if line.startswith("class FastMCDProcessor"):
                in_fast = True
            if in_fast and "freq_sum" in line:
                continue
            kept.append(line)
        broken = "\n".join(kept) + "\n"
        report = Analyzer(select=["SIM001"]).analyze(
            [SourceFile.from_source(broken, path=path, module=IN_SCOPE)]
        )
        assert len(report.findings) == 1
        assert "_freq_sum" in report.findings[0].message

    def test_sim001_suppressible_on_class_line(self):
        from repro.statcheck import Analyzer, SourceFile

        source = (
            "class MCDProcessor:\n"
            "    def step(self):\n"
            "        self._now = 1.0\n"
            "\n"
            "class FastMCDProcessor(MCDProcessor):  "
            "# statcheck: disable=SIM001 -- deliberate divergence\n"
            "    def run(self):\n"
            "        return 0\n"
        )
        report = Analyzer(select=["SIM001"]).analyze(
            [SourceFile.from_source(source, path="fx.py", module=IN_SCOPE)]
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_race001_flags_the_real_scheduler_shape(self):
        """pooled_map arguments count as worker entries."""
        from repro.statcheck import Analyzer, SourceFile

        source = (
            "from repro.engine.scheduler import pooled_map\n"
            "SEEN = []\n"
            "def work(item):\n"
            "    SEEN.append(item)\n"
            "    return item\n"
            "def run(items):\n"
            "    return pooled_map(work, items, workers=4)\n"
        )
        report = Analyzer(select=["RACE001"]).analyze(
            [SourceFile.from_source(source, path="fx.py", module=IN_SCOPE)]
        )
        assert [f.line for f in report.findings] == [4]
        assert "SEEN" in report.findings[0].message

    def test_unit001_fails_open_on_unknown_values(self):
        from repro.statcheck import Analyzer, SourceFile

        source = (
            "def f(samples, cfg):\n"
            "    x = samples[0]\n"
            "    y = cfg.whatever()\n"
            "    return x + y\n"
        )
        report = Analyzer(select=["UNIT001"]).analyze(
            [SourceFile.from_source(source, path="fx.py", module=IN_SCOPE)]
        )
        assert report.findings == []

    def test_unit001_out_of_scope_module_is_ignored(self):
        assert (
            findings_for("unit001_fires.py", "UNIT001", module=OUT_OF_SCOPE)
            == []
        )
