"""PY001 positive fixture: mutable defaults of every stripe."""

import collections


def record_sample(value, history=[]):  # line 6: shared list
    history.append(value)
    return history


def merge_overrides(overrides={}):  # line 11: shared dict
    return dict(overrides)


def tally(counts=collections.defaultdict(int)):  # line 15: shared mapping
    return counts


def keyword_only(*, seen=set()):  # line 19: shared set (kw-only default)
    return seen
