"""ASYNC002 firing fixture: spawned tasks whose handles are dropped."""

import asyncio


async def kick_off(job):
    asyncio.create_task(job.run())
    asyncio.ensure_future(job.finalize())


async def schedule(loop, job):
    loop.create_task(job.run())
