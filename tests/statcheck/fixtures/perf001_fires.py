"""PERF001 positive fixture: per-iteration allocations in hot loops."""

from repro.simcore.markers import hot_path


def _domain_cycle(events):
    for event in events:
        payload = {"event": event}  # line 8: dict literal in hot loop
        stale = [event]  # line 9: list literal in hot loop
        kinds = {event.kind}  # line 10: set literal in hot loop
        payload.update(dict(kind=event.kind))  # line 11: dict() call
        del stale, kinds
    return payload


def _front_end_cycle(queue):
    while queue:
        entry = queue.pop()
        seen = [e.index for e in queue]  # line 19: list comprehension
        fresh = list(queue)  # line 20: list() call
        del entry, fresh
    return seen


@hot_path
def megaloop(events):
    total = 0
    while events:
        event = events.pop()
        by_kind = {k: k for k in event.kinds}  # line 30: dict comprehension
        tags = set(event.kinds)  # line 31: set() call
        total += len(by_kind) + len(tags)
    return total
