"""ASYNC003 firing fixture: loop-confined methods called off-loop.

``Registry`` is marked loop-confined.  ``start_thread`` hands a bound
method straight to a Thread, ``offload`` dispatches one through
``run_in_executor``, and ``_worker`` (itself a thread target) calls in
directly -- all three violate confinement.
"""

import asyncio
import threading


# statcheck: loop-confined
class Registry:
    def __init__(self):
        self.jobs = {}

    def publish(self, key, value):
        self.jobs[key] = value

    def start_thread(self):
        thread = threading.Thread(target=self.publish)
        thread.start()

    async def offload(self, key, value):
        loop = asyncio.get_event_loop()
        await loop.run_in_executor(None, self.publish, key, value)

    def _worker(self):
        self.publish("job", 1)

    def spawn_worker(self):
        thread = threading.Thread(target=self._worker)
        thread.start()
