"""OBS001 positive fixture: emit/schema mismatches in both directions."""

EVENT_SCHEMAS = {
    "sample": {"domain": str},
    "ghost_event": {"domain": str},  # line 5: orphan -- never emitted
}


class Controller:
    def __init__(self, probe):
        self.probe = probe

    def tick(self, now_ns, kind):
        self.probe.event("sample", now_ns, domain="int")
        self.probe.event("mystery", now_ns, domain="int")  # line 15: no schema
        self.probe.event(kind, now_ns, domain="int")  # line 16: non-literal
