"""SPAN002 clean fixture: keys stay span-free; other functions may
read span plumbing freely."""


def cache_key(job):
    return f"{job.benchmark}-{job.seed}"


def canonical_dict(job):
    return {"benchmark": job.benchmark, "seed": job.seed}


def ship_to_worker(job):
    # not a cache-key builder: span reads are the whole point here
    return {"spec": canonical_dict(job), "span": job.span_context}
