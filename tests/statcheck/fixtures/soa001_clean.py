"""SOA001 negative fixture: broadcasting done right."""

import numpy as np


def column_broadcast(lanes):
    occ = np.zeros((len(lanes), 3))
    scale = np.zeros(len(lanes))
    return occ * scale[:, None]


def reshape_ok():
    grid = np.zeros((4, 3))
    return grid.reshape((6, 2))


def store_ok(lanes):
    acc = np.zeros((len(lanes), 4))
    acc[:, 1:] = np.zeros((len(lanes), 3))
    return acc
