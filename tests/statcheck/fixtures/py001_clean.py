"""PY001 negative fixture: None defaults, immutable defaults."""


def record_sample(value, history=None):
    history = [] if history is None else history
    history.append(value)
    return history


def merge_overrides(overrides=None):
    return dict(overrides or {})


def windowed(span=(0, 4), label="queue"):
    return span, label
