"""SOA002 negative fixture: explicit casts and uniform precision."""

import numpy as np


def uniform_precision(lanes):
    energy = np.zeros(len(lanes))
    energy = energy + np.zeros(len(lanes))
    return energy


def explicit_cast(lanes):
    acc = np.zeros(len(lanes), dtype=np.float32)
    wide = np.zeros(len(lanes))
    acc[:] = wide.astype(np.float32)
    return acc


def python_scalar_is_fine(lanes):
    acc = np.zeros(len(lanes), dtype=np.float32)
    acc[:] = 0.0
    return acc + 1.0
