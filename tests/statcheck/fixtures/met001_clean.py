"""MET001 clean fixture: every bounded-origin shape the rule accepts."""

_METHODS = frozenset({"GET", "POST", "DELETE"})
OUTCOMES = ("finished", "failed", "cancelled")


class JobState:
    QUEUED = "queued"


class Handler:
    def __init__(self, metrics):
        self.requests = metrics.counter_family(
            "requests_total", "Requests.", ("method", "route", "status")
        )

    def handle(self, request, match, response):
        # clamp idiom: membership in a static set bounds anything
        method = request.method if request.method in _METHODS else "other"
        self.requests.labels(
            method=method,
            # allowlisted attrs: router patterns / HTTP statuses
            route=match.pattern or "unmatched",
            status=str(response.status),
        ).inc()

    def enumerate_outcomes(self):
        for outcome in OUTCOMES:
            self.requests.labels(method=outcome).inc()
        for state in ("a", "b"):
            self.requests.labels(method=state).inc()

    def constants(self):
        self.requests.labels(method="GET").inc()
        self.requests.labels(method=JobState.QUEUED).inc()
