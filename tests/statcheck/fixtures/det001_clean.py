"""DET001 negative fixture: every RNG is an owned, seeded instance."""

import random

import numpy as np


class JitteredClock:
    def __init__(self, seed):
        self._rng = random.Random(seed)
        self._np_rng = np.random.default_rng(seed)

    def jitter_edge(self, period_ns):
        return period_ns + self._rng.gauss(0.0, 0.005)

    def pick_victim(self, ways):
        return int(self._np_rng.integers(ways))
