"""DET002 positive fixture: host-clock reads in controller code."""

import time
from datetime import datetime
from time import perf_counter


def interval_elapsed(started):
    return time.time() - started  # line 9: wall clock


def stamp_decision():
    return datetime.now()  # line 13: wall clock


def phase_cost():
    return perf_counter()  # line 17: from-imported monotonic read
