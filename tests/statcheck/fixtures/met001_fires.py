"""MET001 firing fixture: request data flowing into metrics labels."""


class Handler:
    def __init__(self, metrics):
        self.requests = metrics.counter_family(
            "requests_total", "Requests.", ("path", "user")
        )

    def handle(self, request):
        self.requests.labels(path=request.path).inc()
        user = request.user
        self.requests.labels(user=user).inc()

    def positional(self, request):
        self.requests.labels(request.path).inc()
