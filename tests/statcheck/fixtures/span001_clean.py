"""SPAN001 clean fixture: ended, escaped, and with-managed spans."""


def ended(tracer, job):
    span = tracer.start("run")
    try:
        return job.execute()
    finally:
        span.end()


def with_managed(tracer, job):
    with tracer.start("run") as span:
        span.set_attr("job", job.id)
        return job.execute()


def returned(tracer):
    span = tracer.start("run")
    return span  # the caller owns it now


def stored(self_like, tracer):
    span = tracer.start("run")
    self_like.current = span  # an owner field ends it later


def passed_on(tracer, job):
    span = tracer.start("run")
    job.attach(span)  # the job ends it


def conditional(tracer, enabled, job):
    span = None
    if enabled:
        span = tracer.start("run")
    job.execute()
    if span is not None:
        span.end()
