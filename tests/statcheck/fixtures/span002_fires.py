"""SPAN002 firing fixture: span plumbing read inside cache-key builders."""


def cache_key(job):
    return f"{job.benchmark}-{job.span.trace_id}"


def canonical_dict(job):
    payload = {"benchmark": job.benchmark}
    payload["parent"] = job.span_context
    return payload
