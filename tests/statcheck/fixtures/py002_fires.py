"""PY002 positive fixture: swallowed and bare excepts."""


def retry_forever(job):
    while True:
        try:
            return job.run()
        except Exception:  # line 8: swallows every failure silently
            continue


def best_effort(path):
    try:
        with open(path) as handle:
            return handle.read()
    except:  # line 16: bare except
        return None


def ignore_everything(job):
    try:
        job.run()
    except Exception as exc:  # line 23: bound but never used
        pass
