"""ASYNC002 clean fixture: retained, awaited, or tracked task handles."""

import asyncio


class App:
    def __init__(self):
        self._tasks = set()

    async def kick_off(self, job):
        task = asyncio.create_task(job.run())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def run_now(self, job):
        await asyncio.create_task(job.run())

    async def gather(self, jobs):
        return await asyncio.gather(
            *(asyncio.ensure_future(job.run()) for job in jobs)
        )
