"""DET001 positive fixture: global-RNG draws in simulation code."""

import random

import numpy as np
from random import gauss


def jitter_edge(period_ns):
    return period_ns + random.gauss(0.0, 0.005)  # line 10: random.gauss


def pick_victim(ways):
    return np.random.randint(ways)  # line 14: np.random.randint


def reseed_everything(seed):
    random.seed(seed)  # line 18: reseeding the global is still shared state


def sampled_noise():
    return gauss(0.0, 1.0)  # line 22: from-imported global draw
