"""DET002 negative fixture: all timing derives from simulated time."""


def interval_elapsed(now_ns, started_ns):
    return now_ns - started_ns


def next_sample_edge(now_ns, period_ns):
    return now_ns + period_ns
