"""VEC001 negative fixture: every state array pairs with scalar state.

Each array ``GroupState`` mutates is seeded from a lane attribute the
``_absorb_lane_state`` path writes back; ``scratch`` carries no scalar
counterpart but is declared ``_DRIVER_INTERNAL``.
"""

import numpy as np


class LaneProc:
    def __init__(self):
        self.travel_total = 0.0
        self.count = 0

    def _absorb_lane_state(self, travel, count):
        self.travel_total = travel
        self.count = count


class GroupState:  # statcheck: vector-state=LaneProc
    _DRIVER_INTERNAL = frozenset({"scratch"})

    def __init__(self, lanes):
        self.travel = np.array([lane.travel_total for lane in lanes])
        self.counts = np.array([lane.count for lane in lanes])
        self.scratch = np.zeros(len(lanes))

    def advance(self):
        self.travel = self.travel + 1.0
        self.counts = self.counts + 1
        self.scratch = self.scratch * 0.0
