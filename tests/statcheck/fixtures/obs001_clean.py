"""OBS001 negative fixture: every kind registered, every schema emitted."""

EVENT_SCHEMAS = {
    "sample": {"domain": str},
    "freq_step": {"domain": str, "steps": int},
}


class Controller:
    def __init__(self, probe):
        self.probe = probe

    def tick(self, now_ns):
        self.probe.event("sample", now_ns, domain="int")

    def step(self, now_ns):
        self.probe.event("freq_step", now_ns, domain="int", steps=1)
        # events on non-probe receivers belong to other buses entirely
        self.telemetry.event("job_started", now_ns)
