"""SOA002 positive fixture: dtype drift in accumulation code."""

import numpy as np


def narrow_accumulator(lanes):
    energy = np.zeros(len(lanes), dtype=np.float32)
    step_e = np.zeros(len(lanes))
    energy = energy + step_e
    return energy


def downcasting_store(lanes):
    acc = np.zeros(len(lanes), dtype=np.float32)
    wide = np.zeros(len(lanes))
    acc[:] = wide
    return acc


def float_into_counter(lanes):
    counts = np.zeros(len(lanes), dtype=np.int64)
    counts[:] = np.zeros(len(lanes))
    return counts
