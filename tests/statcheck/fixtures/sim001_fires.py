"""SIM001 firing fixture: a fast core that dropped reference state.

Shaped like the real pair: the reference hot path maintains a frequency
accumulator table and a clock, the fast subclass re-implements the loop
over locals -- but its author forgot the frequency table entirely, so
``_freq_sum`` is never read, written back, or even initialized from.
"""


class MCDProcessor:
    def __init__(self):
        self._now_ns = 0.0
        self._freq_sum = {}
        self._freq_samples = 0

    def _advance(self, domain, per, freq_ghz):
        self._now_ns = self._now_ns + per
        # the frequency-table write the fast core must mirror
        self._freq_sum[domain] = self._freq_sum.get(domain, 0.0) + freq_ghz
        self._freq_samples += 1


class FastMCDProcessor(MCDProcessor):
    def run(self, steps, domain, per, freq_ghz):
        now_ns = self._now_ns
        samples = self._freq_samples
        for _ in range(steps):
            now_ns += per
            samples += 1
        self._now_ns = now_ns
        self._freq_samples = samples
        # missing: any mention of self._freq_sum
