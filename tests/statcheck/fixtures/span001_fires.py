"""SPAN001 firing fixture: spans started, held locally, and dropped."""

from repro.obs.spans import Span


def run_job(tracer, job):
    span = tracer.start("run", attrs={"job": job.id})
    result = job.execute()
    return result  # span never ends, never escapes


def build_raw(trace_id):
    span = Span("raw", trace_id, "abc")
    span.set_attr("kind", "raw")
    return trace_id
