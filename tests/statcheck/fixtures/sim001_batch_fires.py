"""SIM001 transitive fixture: a batch core two hops below the reference.

``BatchMCDProcessor`` subclasses the (clean) fast core rather than the
reference directly; the rule must resolve base classes transitively and
hold the batch core to the full reference contract on its own.  Here
the batch rewrite forgot the frequency table, while its fast parent
still carries everything.
"""


class MCDProcessor:
    def __init__(self):
        self._now_ns = 0.0
        self._freq_sum = {}
        self._freq_samples = 0

    def _advance(self, domain, per, freq_ghz):
        self._now_ns = self._now_ns + per
        self._freq_sum[domain] = self._freq_sum.get(domain, 0.0) + freq_ghz
        self._freq_samples += 1


class FastMCDProcessor(MCDProcessor):
    def run(self, steps, domain, per, freq_ghz):
        now_ns = self._now_ns
        samples = self._freq_samples
        freq_sum = self._freq_sum
        for _ in range(steps):
            now_ns += per
            samples += 1
            freq_sum[domain] = freq_sum.get(domain, 0.0) + freq_ghz
        self._now_ns = now_ns
        self._freq_samples = samples
        self._freq_sum = freq_sum


class BatchMCDProcessor(FastMCDProcessor):
    def run(self, steps, domain, per, freq_ghz):
        now_ns = self._now_ns
        samples = self._freq_samples
        for _ in range(steps):
            now_ns += per
            samples += 1
        self._now_ns = now_ns
        self._freq_samples = samples
        # missing: any mention of self._freq_sum
