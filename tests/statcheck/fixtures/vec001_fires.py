"""VEC001 positive fixture: one-sided vector/scalar state.

``GroupState.energy`` is seeded from ``energy_acc`` and mutated per
round, but ``LaneProc._absorb_lane_state`` never writes ``energy_acc``
back (direction 1); ``LaneProc`` absorbs ``ghost_total``, but no driver
array is seeded from it (direction 2).
"""

import numpy as np


class LaneProc:
    def __init__(self):
        self.travel_total = 0.0
        self.count = 0
        self.ghost_total = 0.0
        self.energy_acc = 0.0

    def _absorb_lane_state(self, travel, count, ghost):
        self.travel_total = travel
        self.count = count
        self.ghost_total = ghost


class GroupState:  # statcheck: vector-state=LaneProc
    _DRIVER_INTERNAL = frozenset({"scratch"})

    def __init__(self, lanes):
        self.travel = np.array([lane.travel_total for lane in lanes])
        self.energy = np.array([lane.energy_acc for lane in lanes])
        self.counts = np.array([lane.count for lane in lanes])
        self.scratch = np.zeros(len(lanes))

    def advance(self):
        self.travel = self.travel + 1.0
        self.energy = self.energy + 1.0
        self.counts = self.counts + 1
        self.scratch = self.scratch * 0.0
