"""DET003 negative fixture: hashed iterables are explicitly ordered."""

import hashlib


def cache_key(tags):
    digest = hashlib.sha256()
    for tag in sorted(set(tags)):  # sorted() pins the order
        digest.update(tag.encode())
    return digest.hexdigest()


def walk_unhashed(tags):
    # set iteration is fine in a function that never hashes
    return [tag.upper() for tag in set(tags)]
