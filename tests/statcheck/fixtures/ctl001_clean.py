"""CTL001 negative fixture: tolerances and integer comparisons."""


def should_hold(freq_ghz, target_ghz):
    return abs(freq_ghz - target_ghz) < 1e-12


def reconcile(level_trigger, slope_trigger):
    # integer trigger comparison is exact by construction: no finding
    if level_trigger != slope_trigger:
        return None
    return level_trigger == 1
