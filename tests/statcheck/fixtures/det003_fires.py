"""DET003 positive fixture: set iteration feeding a hash."""

import hashlib


def cache_key(tags):
    digest = hashlib.sha256()
    for tag in set(tags):  # line 8: unordered iteration into the hash
        digest.update(tag.encode())
    return digest.hexdigest()


def spec_hash(fields):
    parts = [name for name in {f.lower() for f in fields}]  # line 14
    return hash(tuple(parts))
