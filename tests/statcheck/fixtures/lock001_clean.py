"""LOCK001 clean fixture: guarded writes, single-context writers.

``Guarded`` holds its lock around every cross-context write;
``LoopOnly`` is written from coroutines exclusively, so it needs (and
takes) no lock; ``__init__`` writes are exempt everywhere.
"""

import threading


class Guarded:
    def __init__(self):
        self.hits = 0
        self._lock = threading.Lock()

    def record(self, value):
        with self._lock:
            self.hits += value

    async def handle(self, value):
        self.record(value)

    def start(self):
        thread = threading.Thread(target=self.record)
        thread.start()


class LoopOnly:
    def __init__(self):
        self.requests = 0

    async def handle(self):
        self.requests += 1

    async def reset(self):
        self.requests = 0
