"""SOA003 negative fixture: dimensionally consistent vector code."""

import numpy as np


def invert_to_period(lanes):
    freq_ghz = np.ones(len(lanes))
    period_ns = 1.0 / freq_ghz
    return period_ns


def slew_times_dt(lanes):
    slew_ghz_per_ns = np.ones(len(lanes))
    dt_ns = np.ones(len(lanes))
    delta_ghz = slew_ghz_per_ns * dt_ns
    return delta_ghz


def scalar_epsilon(lanes):
    freq_ghz = np.ones(len(lanes))
    return freq_ghz + 1e-9
