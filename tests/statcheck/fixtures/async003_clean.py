"""ASYNC003 clean fixture: confinement respected.

Loop-side callers touch the confined registry directly; thread-side
code hands work back via ``call_soon_threadsafe`` (a loop-kind edge the
thread traversal refuses to follow); an explicitly thread-safe method
may be dispatched; ``__init__`` is exempt (happens-before publication).
"""

import threading


# statcheck: loop-confined
class Registry:
    def __init__(self):
        self.jobs = {}
        self._lock = threading.Lock()

    def publish(self, key, value):
        self.jobs[key] = value

    # statcheck: thread-safe
    def publish_threadsafe(self, key, value):
        with self._lock:
            self.jobs[key] = value

    async def handle(self, key, value):
        self.publish(key, value)

    # statcheck: thread-safe -- touches no state, only hops to the loop
    def _worker(self, loop, key, value):
        loop.call_soon_threadsafe(self.publish, key, value)

    def spawn_worker(self, loop):
        thread = threading.Thread(target=self._worker, args=(loop,))
        thread.start()

    def spawn_safe(self):
        thread = threading.Thread(target=self.publish_threadsafe)
        thread.start()


def build():
    return Registry()
