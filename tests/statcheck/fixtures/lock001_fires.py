"""LOCK001 firing fixture: one attribute, two contexts, no lock.

``Stats.record`` is reachable from a coroutine (loop context) AND is a
thread target (thread context); its unguarded ``self.hits`` increment
and ``self.samples.append`` both race.
"""

import threading


class Stats:
    def __init__(self):
        self.hits = 0
        self.samples = []
        self._lock = threading.Lock()

    def record(self, value):
        self.hits += 1
        self.samples.append(value)

    async def handle(self, value):
        self.record(value)

    def start(self):
        thread = threading.Thread(target=self.record)
        thread.start()
