"""CACHE001 positive fixture: a job field missing from the cache key."""

from dataclasses import dataclass


@dataclass(frozen=True)
class SweepJob:
    benchmark: str
    scheme: str = "adaptive"
    seed: int = 0
    history_stride: int = 4  # line 11: never read by canonical_dict

    def canonical_dict(self):
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "seed": self.seed,
        }
