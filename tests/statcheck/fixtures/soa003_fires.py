"""SOA003 positive fixture: unit mixing lifted elementwise."""

import numpy as np


def add_mix(lanes):
    freq_ghz = np.zeros(len(lanes))
    dt_ns = np.ones(len(lanes))
    return freq_ghz + dt_ns


def where_mix(lanes, mask):
    volt = np.zeros(len(lanes))
    freq_ghz = np.ones(len(lanes))
    return np.where(mask, volt, freq_ghz)


def compare_mix(lanes):
    freq_ghz = np.zeros(len(lanes))
    dt_ns = np.ones(len(lanes))
    return freq_ghz < dt_ns
