"""SOA001 positive fixture: provably incompatible vector shapes."""

import numpy as np


def transposed_write(lanes, doms):
    per_lane = np.array([[0.0 for _ in doms] for _ in lanes])
    per_dom = np.array([[0.0 for _ in lanes] for _ in doms])
    return per_lane - per_dom


def bad_reshape():
    grid = np.zeros((4, 3))
    return grid.reshape((5, 3))


def collapsing_store(lanes, doms):
    acc = np.zeros((len(lanes), 3))
    block = np.array([[[0.0 for _ in doms] for _ in doms] for _ in lanes])
    acc[:, :] = block
    return acc
