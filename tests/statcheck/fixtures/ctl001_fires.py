"""CTL001 positive fixture: exact float equality in decision code."""


def should_hold(freq_ghz, target_ghz):
    return freq_ghz == target_ghz * 1.0  # line 5: float == float


def at_rail(freq_ghz):
    if freq_ghz == 0.25:  # line 9: compare against float literal
        return True
    return float(freq_ghz) != 1.0  # line 11: float() conversion compare


def slew_done(delta_ghz, dt_ns):
    return delta_ghz / dt_ns == 0.0  # line 15: division result compare
