"""PERF001 negative fixture: allocation-free hot loops, allocations
allowed everywhere else."""

from repro.simcore.markers import hot_path


def _domain_cycle(events):
    # one-time setup allocations before the loop never fire
    occupancies = [0, 0, 0, 0]
    stats = {"events": 0}
    for i, event in enumerate(events):
        # mutating preallocated buffers is the sanctioned pattern
        occupancies[i % 4] += 1
        stats["events"] += 1
    return occupancies, stats


def cold_helper(events):
    # not a hot function: allocate freely, even inside loops
    return [{"event": e} for e in events for _ in range(2)]


@hot_path
def megaloop(events):
    buffer = []
    while events:
        buffer.append(events.pop())

    def summarize():
        # nested defs are their own scope, not part of the hot loop
        return {e: True for e in buffer}

    # a justified suppression documents a cold branch inside a hot loop
    for event in buffer:
        if event is None:  # never taken on the hot path
            record = {"event": event}  # statcheck: disable=PERF001 -- cold error branch, only reached on corrupt input
            raise ValueError(record)
    return summarize()
