"""PY002 negative fixture: narrow catches, re-raises, reported errors."""

import os


def cleanup(tmp_path):
    try:
        os.unlink(tmp_path)
    except OSError:  # narrow: acceptable to swallow
        pass


def guarded_write(write, tmp_path):
    try:
        write()
    except BaseException:  # broad but re-raises: cleanup pattern
        cleanup(tmp_path)
        raise


def isolate_fault(job, telemetry):
    try:
        return job.run()
    except Exception as exc:  # broad but reported: retry-path pattern
        telemetry.emit("job_failed", error=str(exc))
        return None
