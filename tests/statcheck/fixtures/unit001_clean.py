"""UNIT001 clean fixture: idiomatic controller arithmetic, zero findings.

Mirrors the shapes the real hot paths use -- conversions through the
unit algebra, scalar offsets, cycle-count scaling, unknown values.
"""

import math


def proper_conversion(freq_ghz):
    # 1/f: frequency -> time, exactly what the rule demands
    period_ns = 1.0 / freq_ghz
    return period_ns


def scalar_offsets_are_fine(deadline_ns):
    # epsilons and literal offsets combine freely with any unit
    return deadline_ns + 0.25


def cycle_count_scaling(penalty_cycles, period_ns):
    # scalar * time -> time; the *_cycles suffix declares a count
    stall_ns = penalty_cycles * period_ns
    return stall_ns + period_ns


def slew_algebra(f_target, f_now, slew_ghz_per_ns):
    # |Δf| / slew -> time, assigned to a *_ns name: consistent
    settle_ns = abs(f_target - f_now) / slew_ghz_per_ns
    return settle_ns


def unknown_stays_quiet(samples, period_ns):
    # subscripts and unresolved calls carry no unit: never flag
    latest = samples[-1]
    return latest + period_ns


def selector_over_one_unit(wake_ns, timer_ns):
    return min(wake_ns, timer_ns)


def reassignment_changes_meaning(window_ns):
    # once a declared name is overwritten by an unknown value the
    # declaration no longer applies downstream
    window_ns = math.inf
    return window_ns * 2.0
