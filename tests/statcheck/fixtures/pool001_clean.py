"""POOL001 negative fixture: module-level callables only."""

import concurrent.futures


def run_one(job):
    return job.run()


def run_all(jobs):
    with concurrent.futures.ProcessPoolExecutor() as executor:
        return [executor.submit(run_one, job) for job in jobs]


def run_inline(jobs):
    # map() on a non-pool receiver is not a pool submission
    return list(map(lambda job: job.run(), jobs))
