"""CACHE001 negative fixture: every field reaches the cache key."""

from dataclasses import dataclass
from typing import ClassVar


@dataclass(frozen=True)
class SweepJob:
    #: class-level constants and private members are not spec fields
    FORMAT: ClassVar[int] = 1

    benchmark: str
    scheme: str = "adaptive"
    seed: int = 0

    def canonical_dict(self):
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "seed": self.seed,
        }
