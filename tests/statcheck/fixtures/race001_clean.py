"""RACE001 clean fixture: pool workers that keep to themselves.

Workers return values instead of mutating shared state; the only
module-level mutation happens in the parent-side aggregation, which is
not reachable from any worker entry point.  A local that shadows a
module global is also fine.
"""

RESULTS = []
LIMITS = {}


def evaluate(job_id):
    # a local shadowing the module global: no shared state involved
    RESULTS = [job_id * 2.0]
    return RESULTS[0]


def summarize(outcomes):
    # parent-side aggregation; never submitted to a pool
    RESULTS.extend(outcomes)
    LIMITS["count"] = len(RESULTS)
    return LIMITS


def run_sweep(executor, job_ids):
    futures = [executor.submit(evaluate, job_id) for job_id in job_ids]
    return summarize([future.result() for future in futures])
