"""UNIT001 firing fixture: mixed-unit arithmetic and missing conversions.

Every function here contains exactly one unit bug; the test asserts each
shape is caught.
"""


def adds_frequency_to_period(freq_ghz, period_ns):
    # time + frequency: dimensional nonsense
    return period_ns + freq_ghz


def missing_one_over_f(freq_ghz):
    # a *_ns name assigned a frequency: the classic dropped 1/f
    period_ns = freq_ghz
    return period_ns


def compares_across_units(deadline_ns, target_ghz):
    return deadline_ns < target_ghz


def mixes_units_in_min(slack_ns, budget_ghz):
    return min(slack_ns, budget_ghz)


def wrong_keyword_unit(freq_ghz, schedule):
    # a frequency handed to a time-named keyword argument
    schedule(slew_ns=freq_ghz)


def attribute_store_conflict(regulator, freq_ghz):
    regulator.settle_ns = freq_ghz


def augmented_mix(total_ns, freq_ghz):
    total_ns -= freq_ghz
    return total_ns


def branchy_conditional(fast, wait_ns, rate_ghz):
    return wait_ns if fast else rate_ghz
