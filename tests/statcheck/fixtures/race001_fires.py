"""RACE001 firing fixture: worker-reachable code mutating module state.

``run_sweep`` submits ``evaluate`` to an executor; ``evaluate`` calls
``record``, which mutates module-level containers three different ways.
The rule must flag all of them via call-graph reachability, not just
direct mutations in the submitted function.
"""

RESULTS = []
BEST = {}
COUNTER = 0


def record(job_id, score):
    global COUNTER
    RESULTS.append((job_id, score))
    BEST[job_id] = score
    COUNTER = COUNTER + 1


def evaluate(job_id):
    score = job_id * 2.0
    record(job_id, score)
    return score


def run_sweep(executor, job_ids):
    futures = [executor.submit(evaluate, job_id) for job_id in job_ids]
    return [future.result() for future in futures]
