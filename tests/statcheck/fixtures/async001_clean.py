"""ASYNC001 clean fixture: the sanctioned off-loop patterns.

Blocking work is dispatched through ``run_in_executor`` (the executor
hop breaks loop reachability for the dispatched callee), coroutines
sleep asynchronously, and sync-only helpers may block freely -- they
are never reachable from a coroutine.
"""

import asyncio
import functools
import time


def run_experiment(benchmark):
    return benchmark


def _blocking_load(path):
    with open(path) as handle:
        return handle.read()


async def handle(request):
    await asyncio.sleep(0.1)
    loop = asyncio.get_event_loop()
    data = await loop.run_in_executor(None, _blocking_load, request.path)
    result = await loop.run_in_executor(
        None, functools.partial(run_experiment, request.benchmark)
    )
    return data, result


def scrape_loop(interval):
    # sync-only entry point: blocking here is fine (repro-dvfs top)
    while True:
        time.sleep(interval)
