"""Suppression fixture: every finding here carries a pragma."""

import time


def profiled(job):
    started = time.time()  # statcheck: disable=DET002 -- profiling only
    result = job.run()
    return result, time.time() - started  # statcheck: disable=all -- wall-clock timing is the point here


def accumulate(value, seen=[]):  # statcheck: disable=PY001 -- module-lifetime memo by design
    seen.append(value)
    return seen
