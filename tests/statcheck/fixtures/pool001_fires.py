"""POOL001 positive fixture: unpicklable payloads handed to a pool."""

import concurrent.futures


def run_all(jobs):
    executor = concurrent.futures.ProcessPoolExecutor()

    def run_one(job):  # a closure: not picklable
        return job.run()

    with executor:
        futures = [executor.submit(run_one, job) for job in jobs]  # line 13
        mapped = executor.map(lambda job: job.run(), jobs)  # line 14
    return futures, list(mapped)
