"""ASYNC001 firing fixture: blocking calls reachable from coroutines.

``handle`` blocks directly three ways; ``refresh`` blocks inside a sync
helper that the coroutine calls (reachability, not just direct bodies);
``snapshot`` runs a scalar simulation synchronously.
"""

import subprocess
import time


def run_experiment(benchmark):
    return benchmark


def _reload_config(path):
    with open(path) as handle:
        return handle.read()


async def handle(request):
    time.sleep(0.1)
    subprocess.run(["ls"])
    data = request.path.read_text()
    return data


async def refresh(path):
    return _reload_config(path)


async def snapshot(job):
    return run_experiment(job.benchmark)
