"""Shared helpers for the statcheck test suite."""

import os

import pytest

from repro.statcheck import Analyzer, SourceFile

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")

#: Virtual module path that puts a fixture inside every scoped rule's
#: scope (repro.core is covered by the determinism AND control scopes).
IN_SCOPE = "repro.core.fixture"
#: Virtual module path outside every scoped rule's scope.
OUT_OF_SCOPE = "fixtures.fixture"


def load_fixture(name, module=IN_SCOPE):
    """Parse one fixture file under a virtual module path."""
    path = os.path.join(FIXTURES, name)
    with open(path, encoding="utf-8") as handle:
        return SourceFile.from_source(handle.read(), path=path, module=module)


def findings_for(name, rule_id, module=IN_SCOPE):
    """Run a single rule over a single fixture; return its findings."""
    analyzer = Analyzer(select=[rule_id])
    report = analyzer.analyze([load_fixture(name, module=module)])
    return [f for f in report.findings if f.rule == rule_id]


@pytest.fixture
def fixtures_dir():
    return FIXTURES
