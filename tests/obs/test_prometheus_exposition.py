"""Strict grammar checks of the Prometheus text exposition renderer.

The scrape endpoint is only useful if real Prometheus servers can parse
it, so these tests pin the text format line by line: comment structure,
``TYPE`` before samples, label escaping, and the histogram
``_bucket``/``_sum``/``_count`` invariants (cumulative, monotone,
``+Inf`` equals ``_count``).
"""

from __future__ import annotations

import re

from repro.obs.metrics import MetricsRegistry
from repro.serve.top import parse_prometheus

#: one exposition sample line: name, optional {labels}, numeric value.
#: label values are quoted strings that may contain anything escaped
#: (including ``{``/``}``), so the labels group is built from the quoted
#: string grammar, not a lazy "no braces" class.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?P<labels>\{(?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\})?'
    r" (?P<value>[0-9eE+.\-]+|\+Inf|-Inf|NaN)$"
)
COMMENT_LINE = re.compile(
    r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .+$"
)
LABEL_PAIR = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def _registry_with_everything() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("plain_total", "a plain counter").inc(3)
    fam = registry.counter_family(
        "labeled_total", "labeled counter", ("method", "route")
    )
    fam.labels(method="GET", route="/v1/runs/{id}").inc()
    fam.labels(method="POST", route="/v1/runs").inc(2)
    registry.gauge("depth", "a gauge").set(2.5)
    hist = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 5.0):
        hist.observe(value)
    return registry


def test_every_line_matches_the_grammar():
    text = _registry_with_everything().render_prometheus()
    assert text.endswith("\n")
    for line in text.strip("\n").split("\n"):
        assert SAMPLE_LINE.match(line) or COMMENT_LINE.match(line), (
            f"line fails exposition grammar: {line!r}"
        )


def test_type_line_precedes_samples_of_each_family():
    text = _registry_with_everything().render_prometheus()
    seen_type = set()
    for line in text.strip("\n").split("\n"):
        if line.startswith("# TYPE "):
            seen_type.add(line.split()[2])
            continue
        if line.startswith("#"):
            continue
        name = SAMPLE_LINE.match(line).group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in seen_type or base in seen_type, (
            f"sample before its TYPE line: {line!r}"
        )


def test_type_kinds_are_correct():
    text = _registry_with_everything().render_prometheus()
    kinds = {
        line.split()[2]: line.split()[3]
        for line in text.split("\n")
        if line.startswith("# TYPE ")
    }
    assert kinds["plain_total"] == "counter"
    assert kinds["labeled_total"] == "counter"
    assert kinds["depth"] == "gauge"
    assert kinds["lat_seconds"] == "histogram"


def test_label_pairs_are_well_formed():
    text = _registry_with_everything().render_prometheus()
    for line in text.strip("\n").split("\n"):
        match = SAMPLE_LINE.match(line)
        if not match or not match.group("labels"):
            continue
        body = match.group("labels")[1:-1]
        # split on commas not inside quotes
        for pair in re.split(r',(?=[a-zA-Z_])', body):
            assert LABEL_PAIR.match(pair), f"bad label pair {pair!r} in {line!r}"


def test_weird_label_values_round_trip():
    registry = MetricsRegistry()
    fam = registry.counter_family("odd_total", "", ("k",))
    weird = 'a"b\\c\nd'
    fam.labels(k=weird).inc(7)
    text = registry.render_prometheus()
    # escaped on the wire...
    assert '\\"' in text and "\\\\" in text and "\\n" in text
    assert "\n" not in text.split('odd_total{', 1)[1].split("} ", 1)[0]
    # ...and recovered exactly by the parser
    samples = [s for s in parse_prometheus(text) if s.name == "odd_total"]
    assert samples and samples[0].labels == (("k", weird),)
    assert samples[0].value == 7.0


def test_histogram_bucket_invariants():
    registry = MetricsRegistry()
    hist = registry.histogram("h_seconds", "h", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.05, 0.5, 2.0, 100.0):
        hist.observe(value)
    samples = parse_prometheus(registry.render_prometheus())
    buckets = [
        (dict(s.labels)["le"], s.value)
        for s in samples
        if s.name == "h_seconds_bucket"
    ]
    count = next(s.value for s in samples if s.name == "h_seconds_count")
    total = next(s.value for s in samples if s.name == "h_seconds_sum")
    # one series per bound plus +Inf, in increasing bound order
    assert [le for le, _ in buckets] == ["0.1", "1.0", "10.0", "+Inf"]
    values = [v for _, v in buckets]
    assert values == sorted(values), "cumulative buckets must be monotone"
    assert values == [2, 3, 4, 5]
    assert values[-1] == count == 5
    assert total == sum((0.05, 0.05, 0.5, 2.0, 100.0))


def test_histogram_labels_compose_with_le():
    registry = MetricsRegistry()
    fam = registry.histogram_family(
        "lat_seconds", "", ("route",), buckets=(1.0,)
    )
    fam.labels(route="/a").observe(0.5)
    text = registry.render_prometheus()
    assert 'lat_seconds_bucket{route="/a",le="1.0"} 1' in text
    assert 'lat_seconds_bucket{route="/a",le="+Inf"} 1' in text
    assert 'lat_seconds_sum{route="/a"} 0.5' in text
    assert 'lat_seconds_count{route="/a"} 1' in text


def test_help_lines_escape_newlines():
    registry = MetricsRegistry()
    registry.counter("c_total", "line one\nline two")
    text = registry.render_prometheus()
    assert "# HELP c_total line one\\nline two" in text


def test_empty_registry_renders_empty_string():
    assert MetricsRegistry().render_prometheus() == ""


def test_children_render_sorted_by_label_values():
    registry = MetricsRegistry()
    fam = registry.counter_family("s_total", "", ("k",))
    for key in ("zeta", "alpha", "mid"):
        fam.labels(k=key).inc()
    lines = [
        line
        for line in registry.render_prometheus().split("\n")
        if line.startswith("s_total{")
    ]
    assert lines == sorted(lines)
