"""Trace recorder: ring retention and the JSONL/Chrome writers."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    TraceRecorder,
    chrome_trace_events,
    validate_chrome_file,
    validate_jsonl_file,
)


def _sample_event(t_ns: float, domain: str = "int", occ: int = 3):
    return {
        "kind": "sample", "t_ns": t_ns, "domain": domain, "occupancy": occ,
        "freq_ghz": 0.8, "voltage": 0.9, "energy": 1.25,
    }


class TestRingRetention:
    def test_keeps_most_recent(self):
        recorder = TraceRecorder(ring_size=3)
        for i in range(5):
            recorder.record(_sample_event(float(i)))
        assert recorder.recorded == 5
        assert recorder.dropped == 2
        assert [e["t_ns"] for e in recorder.events()] == [2.0, 3.0, 4.0]
        assert recorder.summary() == {
            "recorded": 5, "retained": 3, "dropped": 2, "ring_size": 3,
        }

    def test_rejects_nonpositive_ring(self):
        with pytest.raises(ValueError):
            TraceRecorder(ring_size=0)


class TestWriters:
    def test_jsonl_round_trip(self, tmp_path):
        recorder = TraceRecorder()
        events = [_sample_event(4.0 * i) for i in range(4)]
        for event in events:
            recorder.record(event)
        path = recorder.write_jsonl(str(tmp_path / "metrics.jsonl"))
        lines = [json.loads(line) for line in open(path)]
        assert lines == events
        assert validate_jsonl_file(path) == []

    def test_chrome_file_is_loadable_and_valid(self, tmp_path):
        recorder = TraceRecorder()
        recorder.record(_sample_event(8.0))
        recorder.record({
            "kind": "fsm_transition", "t_ns": 12.0, "domain": "fp",
            "signal": "level", "from_state": "wait", "to_state": "count_up",
            "dwell_samples": 1, "trigger": 0,
        })
        path = recorder.write_chrome(str(tmp_path / "trace.json"))
        payload = json.load(open(path))
        assert payload["displayTimeUnit"] == "ns"
        assert payload["otherData"]["dropped"] == 0
        assert validate_chrome_file(path) == []


class TestChromeConversion:
    def test_sample_becomes_two_counter_series(self):
        events = chrome_trace_events([_sample_event(4.0, "ls", occ=5)])
        counters = [e for e in events if e["ph"] == "C"]
        assert {e["name"] for e in counters} == {
            "occupancy/ls", "frequency/ls",
        }
        occ = next(e for e in counters if e["name"] == "occupancy/ls")
        assert occ["ts"] == pytest.approx(0.004)  # ns -> us
        assert occ["args"]["entries"] == 5
        assert occ["tid"] == 3  # the LS track

    def test_freq_step_is_duration_slice(self):
        events = chrome_trace_events([{
            "kind": "freq_step", "t_ns": 100.0, "domain": "int", "steps": -2,
            "target_ghz": 0.7, "freq_ghz": 0.705, "applied": True,
            "slew_ns": 343.0,
        }])
        slice_ = next(e for e in events if e["ph"] == "X")
        assert slice_["name"] == "step -2"
        assert slice_["dur"] == pytest.approx(0.343)
        assert slice_["args"]["applied"] is True

    def test_metadata_names_only_used_tracks(self):
        events = chrome_trace_events([_sample_event(4.0, "int")])
        thread_names = [
            e for e in events if e.get("name") == "thread_name"
        ]
        assert [e["tid"] for e in thread_names] == [1]
        assert thread_names[0]["args"]["name"] == "INT domain"

    def test_unknown_kind_skipped(self):
        events = chrome_trace_events([{"kind": "wat", "t_ns": 1.0}])
        assert [e["ph"] for e in events] == ["M"]  # just process_name
