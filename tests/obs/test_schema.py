"""Schema validators: accept the real stream, reject malformed events."""

from __future__ import annotations

import json

from repro.obs import validate_event
from repro.obs.schema import main as schema_main, validate_chrome_event


GOOD_SAMPLE = {
    "kind": "sample", "t_ns": 4.0, "domain": "int", "occupancy": 3,
    "freq_ghz": 1.0, "voltage": 1.05, "energy": 2.5,
}


class TestEventValidator:
    def test_valid_events_of_every_kind(self):
        events = [
            GOOD_SAMPLE,
            {"kind": "fsm_transition", "t_ns": 8.0, "domain": "fp",
             "signal": "level", "from_state": "wait", "to_state": "count_up",
             "dwell_samples": 0, "trigger": 0},
            {"kind": "reconcile", "t_ns": 8.0, "domain": "ls",
             "level_trigger": 1, "slope_trigger": 1, "outcome": "combine",
             "steps": 2},
            {"kind": "freq_step", "t_ns": 8.0, "domain": "int", "steps": -1,
             "target_ghz": 0.9, "freq_ghz": 0.902, "applied": True},
            {"kind": "interval_decision", "t_ns": 10_000.0, "domain": "int",
             "controller": "pid", "q_avg": 3.5},
            {"kind": "profile", "t_ns": 99.0, "phase": "observe",
             "wall_s": 0.25, "calls": 1000},
        ]
        for event in events:
            assert validate_event(event) == [], event["kind"]

    def test_unknown_kind_rejected(self):
        assert validate_event({"kind": "nope", "t_ns": 1.0})

    def test_missing_field_rejected(self):
        event = dict(GOOD_SAMPLE)
        del event["voltage"]
        assert any("voltage" in p for p in validate_event(event))

    def test_bool_is_not_an_int(self):
        event = dict(GOOD_SAMPLE, occupancy=True)
        assert any("bool" in p for p in validate_event(event))

    def test_negative_timestamp_rejected(self):
        assert validate_event(dict(GOOD_SAMPLE, t_ns=-1.0))

    def test_value_constraints(self):
        bad_state = {
            "kind": "fsm_transition", "t_ns": 1.0, "domain": "int",
            "signal": "level", "from_state": "waiting", "to_state": "wait",
            "dwell_samples": 1, "trigger": 0,
        }
        assert any("from_state" in p for p in validate_event(bad_state))
        bad_outcome = {
            "kind": "reconcile", "t_ns": 1.0, "domain": "int",
            "level_trigger": 1, "slope_trigger": 0, "outcome": "merged",
            "steps": 1,
        }
        assert any("outcome" in p for p in validate_event(bad_outcome))

    def test_extra_fields_allowed(self):
        assert validate_event(dict(GOOD_SAMPLE, custom="note")) == []


class TestServeEvents:
    """Schema coverage for the serving layer's event kinds."""

    GOOD_REQUEST = {
        "kind": "serve_request", "t_ns": 12.0, "method": "GET",
        "path": "/v1/healthz", "status": 200, "wall_ms": 0.4,
    }
    GOOD_FLUSH = {
        "kind": "serve_batch_flush", "t_ns": 20.0, "requests": 6,
        "groups": 2, "run_batch_calls": 2,
    }
    GOOD_DROP = {
        "kind": "serve_sse_drop", "t_ns": 30.0, "job": "run-000001",
        "dropped": 3,
    }

    def test_valid_serve_events(self):
        for event in (self.GOOD_REQUEST, self.GOOD_FLUSH, self.GOOD_DROP):
            assert validate_event(event) == [], event["kind"]

    def test_request_status_must_be_http(self):
        assert validate_event(dict(self.GOOD_REQUEST, status=42))
        assert validate_event(dict(self.GOOD_REQUEST, status="200"))

    def test_request_wall_ms_non_negative(self):
        assert validate_event(dict(self.GOOD_REQUEST, wall_ms=-0.1))

    def test_flush_counts_non_negative(self):
        assert validate_event(dict(self.GOOD_FLUSH, requests=-1))
        assert validate_event(dict(self.GOOD_FLUSH, run_batch_calls=-1))

    def test_flush_groups_bounded_by_requests(self):
        assert validate_event(dict(self.GOOD_FLUSH, groups=7))

    def test_drop_count_positive(self):
        assert validate_event(dict(self.GOOD_DROP, dropped=0))

    def test_missing_fields_rejected(self):
        event = dict(self.GOOD_DROP)
        del event["job"]
        assert any("job" in p for p in validate_event(event))


class TestChromeValidator:
    GOOD = {"name": "x", "ph": "i", "s": "t", "ts": 1.0, "pid": 1, "tid": 0}

    def test_valid(self):
        assert validate_chrome_event(self.GOOD) == []

    def test_bad_phase(self):
        assert validate_chrome_event(dict(self.GOOD, ph="B"))

    def test_complete_event_needs_duration(self):
        assert validate_chrome_event(dict(self.GOOD, ph="X"))
        assert validate_chrome_event(dict(self.GOOD, ph="X", dur=0.5)) == []

    def test_counter_needs_args(self):
        assert validate_chrome_event(dict(self.GOOD, ph="C"))
        assert validate_chrome_event(
            dict(self.GOOD, ph="C", args={"v": 1})
        ) == []


class TestCliValidator:
    def test_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.jsonl"
        good.write_text(json.dumps(GOOD_SAMPLE) + "\n")
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"kind": "nope", "t_ns": 0}) + "\n")
        assert schema_main([str(good)]) == 0
        assert schema_main([str(good), str(bad)]) == 1
        assert schema_main([]) == 2
        capsys.readouterr()
