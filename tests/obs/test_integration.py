"""End-to-end observability: simulator, artifacts, persistence, engine."""

from __future__ import annotations

import json

import pytest

from repro.harness.experiment import run_experiment
from repro.harness.persistence import result_from_dict, result_to_dict
from repro.mcd.domains import DomainId
from repro.obs import (
    ObsConfig,
    Observability,
    validate_chrome_file,
    validate_jsonl_file,
)


@pytest.fixture(scope="module")
def observed_run():
    """One small adaptive run with full observability, shared read-only."""
    obs = Observability(ObsConfig())
    result = run_experiment(
        "adpcm-encode",
        scheme="adaptive",
        max_instructions=3000,
        record_history=False,
        obs=obs,
    )
    return obs, result


class TestStepEventsAlwaysRecorded:
    """Satellite fix: step decisions survive ``record_history=False``."""

    def test_step_events_without_history_or_obs(self):
        result = run_experiment(
            "adpcm-encode",
            scheme="adaptive",
            max_instructions=3000,
            record_history=False,
        )
        assert result.history.time_ns == []  # history really is off
        assert result.probe_summary is None  # obs really is off
        assert len(result.step_events) > 0
        # and they agree with the regulators' own transition counts
        by_domain = {}
        for event in result.step_events:
            if event.applied:
                by_domain[event.domain] = by_domain.get(event.domain, 0) + 1
        assert by_domain == {
            d: n for d, n in result.transitions.items() if n
        }

    def test_step_event_fields(self):
        result = run_experiment(
            "adpcm-encode", scheme="adaptive", max_instructions=3000,
            record_history=False,
        )
        event = result.step_events[0]
        assert event.domain in (DomainId.INT, DomainId.FP, DomainId.LS)
        assert event.steps != 0  # adaptive commands are relative steps
        assert event.time_ns > 0
        assert event.target_ghz > 0
        assert event.freq_ghz > 0

    def test_absolute_target_schemes_record_steps_zero(self):
        result = run_experiment(
            "g721-encode", scheme="pid", max_instructions=20_000,
            record_history=False,
        )
        assert result.step_events  # PID issued at least one retarget
        assert all(e.steps == 0 for e in result.step_events)


class TestObservedRun:
    def test_identical_simulation_with_obs_on(self, observed_run):
        _, observed = observed_run
        plain = run_experiment(
            "adpcm-encode", scheme="adaptive", max_instructions=3000,
            record_history=False,
        )
        assert observed.time_ns == plain.time_ns
        assert observed.energy.total == plain.energy.total
        assert observed.instructions == plain.instructions

    def test_probe_summary_contents(self, observed_run):
        _, result = observed_run
        summary = result.probe_summary
        counters = summary["counters"]
        assert counters["samples"] > 0
        assert counters["events.sample"] == 3 * counters["samples"]
        assert any(k.startswith("fsm_transitions.") for k in counters)
        assert any(k.startswith("freq_steps.") for k in counters)
        for domain in ("int", "fp", "ls"):
            assert f"occupancy.{domain}" in summary["gauges"]
            assert summary["histograms"][f"occupancy.{domain}"]["count"] > 0
        profile = summary["profile"]
        assert profile["samples"] == counters["samples"]
        assert profile["samples_per_s"] > 0
        assert set(profile["phases"]) >= {"latch", "observe", "slew", "record"}
        json.dumps(summary)  # the whole summary must be JSON-clean

    def test_trace_artifacts_validate_and_cover_all_kinds(
        self, observed_run, tmp_path
    ):
        obs, _ = observed_run
        jsonl = str(tmp_path / "metrics.jsonl")
        chrome = str(tmp_path / "trace.chrome.json")
        obs.write_trace_files(jsonl, chrome)
        assert validate_jsonl_file(jsonl) == []
        assert validate_chrome_file(chrome) == []

        events = [json.loads(line) for line in open(jsonl)]
        kinds = {e["kind"] for e in events}
        assert {"sample", "fsm_transition", "reconcile", "freq_step",
                "profile"} <= kinds
        sample_domains = {
            e["domain"] for e in events if e["kind"] == "sample"
        }
        assert sample_domains == {"int", "fp", "ls"}

        chrome_events = json.load(open(chrome))["traceEvents"]
        names = {e["name"] for e in chrome_events}
        assert {"occupancy/int", "frequency/ls"} <= names
        assert any(e["ph"] == "X" for e in chrome_events)  # freq steps

    def test_obs_argument_forms(self):
        kwargs = dict(
            scheme="adaptive", max_instructions=2000, record_history=False
        )
        assert run_experiment("adpcm-encode", obs=True, **kwargs).probe_summary
        assert run_experiment(
            "adpcm-encode", obs=ObsConfig(trace=False, profile=False), **kwargs
        ).probe_summary is not None
        with pytest.raises(TypeError):
            run_experiment("adpcm-encode", obs="yes", **kwargs)

    def test_sample_stride_thins_sample_events_only(self):
        r1 = run_experiment(
            "adpcm-encode", scheme="adaptive", max_instructions=2000,
            record_history=False, obs=ObsConfig(sample_stride=1),
        )
        r4 = run_experiment(
            "adpcm-encode", scheme="adaptive", max_instructions=2000,
            record_history=False, obs=ObsConfig(sample_stride=4),
        )
        c1, c4 = r1.probe_summary["counters"], r4.probe_summary["counters"]
        assert c4["events.sample"] < c1["events.sample"]
        # decision events are never strided
        assert c4["events.freq_step"] == c1["events.freq_step"]
        assert c4["events.fsm_transition"] == c1["events.fsm_transition"]


class TestPersistenceRoundTrip:
    def test_new_fields_survive(self, observed_run):
        _, result = observed_run
        data = result_to_dict(result)
        json.dumps(data)
        rebuilt = result_from_dict(data)
        assert rebuilt.step_events == result.step_events
        assert rebuilt.probe_summary == result.probe_summary

    def test_old_payloads_still_load(self, observed_run):
        _, result = observed_run
        data = result_to_dict(result)
        del data["step_events"]  # a file written before this PR
        data.pop("probe_summary", None)
        rebuilt = result_from_dict(data)
        assert rebuilt.step_events == []
        assert rebuilt.probe_summary is None


class TestEngineIntegration:
    def test_sweep_aggregates_probe_summaries(self, tmp_path):
        from repro.engine import EngineConfig, SweepEngine
        from repro.harness.comparison import sweep

        engine = SweepEngine(EngineConfig(cache_dir=str(tmp_path / "cache")))
        sweep(
            ["adpcm-encode"], schemes=("adaptive",),
            max_instructions=2000, engine=engine, obs=True,
        )
        summary = engine.telemetry.summary()
        assert summary["obs"]["observed_jobs"] == 2  # baseline + adaptive
        assert summary["obs"]["samples"] > 0
        assert summary["obs"]["samples_per_s"] > 0

        # cache hits must re-surface the stored probe summaries
        engine2 = SweepEngine(EngineConfig(cache_dir=str(tmp_path / "cache")))
        sweep(
            ["adpcm-encode"], schemes=("adaptive",),
            max_instructions=2000, engine=engine2, obs=True,
        )
        summary2 = engine2.telemetry.summary()
        assert summary2["cache_hits"] == 2
        assert summary2["obs"]["observed_jobs"] == 2
        assert summary2["obs"]["events"] == summary["obs"]["events"]

    def test_sweep_without_obs_has_no_obs_key(self, tmp_path):
        from repro.engine import SweepEngine
        from repro.harness.comparison import sweep

        engine = SweepEngine()
        sweep(
            ["adpcm-encode"], schemes=("adaptive",),
            max_instructions=2000, engine=engine,
        )
        assert "obs" not in engine.telemetry.summary()

    def test_engine_path_rejects_live_observability(self):
        from repro.engine import SweepEngine
        from repro.harness.comparison import sweep

        with pytest.raises(ValueError):
            sweep(
                ["adpcm-encode"], schemes=("adaptive",),
                max_instructions=2000, engine=SweepEngine(),
                obs=Observability(),
            )

    def test_obs_config_is_part_of_the_cache_key(self):
        from repro.engine.cache import job_cache_key
        from repro.engine.jobs import SweepJob

        bare = SweepJob.make("adpcm-encode", max_instructions=2000)
        observed = SweepJob.make(
            "adpcm-encode", max_instructions=2000, obs=ObsConfig()
        )
        assert job_cache_key(bare) != job_cache_key(observed)


class TestCliTrace:
    def test_trace_subcommand_writes_valid_artifacts(self, tmp_path, capsys):
        from repro.cli import main

        out = str(tmp_path / "trace")
        code = main([
            "trace", "adpcm-encode", "--instructions", "2000",
            "--out", out, "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["validation_errors"] == []
        assert validate_jsonl_file(payload["files"]["jsonl"]) == []
        assert validate_chrome_file(payload["files"]["chrome"]) == []
        assert payload["probe_summary"]["counters"]["samples"] > 0
