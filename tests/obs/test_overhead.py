"""Overhead guard: the obs-disabled path must actually be a no-op.

A wall-time comparison against a pre-PR binary is not reproducible in
CI, so the 5% budget is enforced structurally and relatively instead:

* a ``sys.setprofile`` tracer proves the disabled simulation makes
  **zero** calls into ``repro.obs`` during ``run()`` -- the no-op fast
  path never enters the subsystem, so it cannot charge per-sample cost;
* a median-of-three timing check proves the disabled run is not slower
  than the fully-instrumented run (which does strictly more work), with
  a generous noise factor so CI machines never flake.
"""

from __future__ import annotations

import os
import sys
import time

import repro.obs as obs_package
from repro.harness.experiment import build_controllers, run_experiment
from repro.mcd.processor import MCDProcessor
from repro.workloads.generator import generate_trace
from repro.workloads.suite import get_benchmark

OBS_DIR = os.path.dirname(os.path.abspath(obs_package.__file__))


def _build_processor(obs=None) -> MCDProcessor:
    spec = get_benchmark("adpcm-encode")
    trace = generate_trace(spec, max_instructions=2000)
    return MCDProcessor(
        trace=trace,
        controllers=build_controllers("adaptive"),
        record_history=False,
        obs=obs,
    )


def test_disabled_run_never_calls_into_obs():
    processor = _build_processor(obs=None)
    calls = []

    def tracer(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(OBS_DIR):
            calls.append(
                f"{os.path.basename(frame.f_code.co_filename)}:"
                f"{frame.f_code.co_name}"
            )

    sys.setprofile(tracer)
    try:
        processor.run()
    finally:
        sys.setprofile(None)
    assert calls == [], f"disabled run entered repro.obs: {sorted(set(calls))}"


def test_enabled_run_does_call_into_obs():
    """The tracer itself works: an observed run is seen entering obs."""
    processor = _build_processor(obs=True)
    calls = []

    def tracer(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(OBS_DIR):
            calls.append(frame.f_code.co_name)

    sys.setprofile(tracer)
    try:
        processor.run()
    finally:
        sys.setprofile(None)
    assert calls, "observed run never entered repro.obs -- tracer broken?"


METRICS_FILES = tuple(
    os.path.join(OBS_DIR, name) for name in ("metrics.py", "spans.py")
)


def test_engine_without_metrics_never_calls_metrics_or_spans():
    """The engine's metrics/tracing default path is zero-call.

    Instruments are resolved to ``None`` at construction and every span
    site is gated on ``tracer.enabled``, so a default-configured engine
    run must make no calls into ``repro.obs.metrics`` or
    ``repro.obs.spans`` at all -- not even no-op ones.
    """
    from repro.engine.scheduler import SweepEngine
    from repro.engine.jobs import SweepJob

    engine = SweepEngine()  # defaults: no metrics, NULL_TRACER, serial
    jobs = [SweepJob.make("adpcm-encode", scheme="adaptive",
                          max_instructions=2000)]
    calls = []

    def tracer(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(
            METRICS_FILES
        ):
            calls.append(
                f"{os.path.basename(frame.f_code.co_filename)}:"
                f"{frame.f_code.co_name}"
            )

    sys.setprofile(tracer)
    try:
        outcomes = engine.run(jobs)
    finally:
        sys.setprofile(None)
    assert outcomes[0].ok
    assert calls == [], (
        f"metrics-disabled engine entered metrics/spans: {sorted(set(calls))}"
    )


def test_engine_with_metrics_does_call_into_metrics():
    """The engine-level tracer works: a metered run is seen entering."""
    from repro.engine.scheduler import SweepEngine
    from repro.engine.jobs import SweepJob
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.spans import SpanRecorder

    engine = SweepEngine(metrics=MetricsRegistry(), tracer=SpanRecorder())
    jobs = [SweepJob.make("adpcm-encode", scheme="adaptive",
                          max_instructions=2000)]
    calls = []

    def tracer(frame, event, arg):
        if event == "call" and frame.f_code.co_filename.startswith(
            METRICS_FILES
        ):
            calls.append(frame.f_code.co_name)

    sys.setprofile(tracer)
    try:
        engine.run(jobs)
    finally:
        sys.setprofile(None)
    assert calls, "metered engine never entered metrics/spans -- guard broken?"


def _median_wall_s(obs, repeats: int = 3) -> float:
    times = []
    for _ in range(repeats):
        started = time.perf_counter()
        run_experiment(
            "adpcm-encode",
            scheme="adaptive",
            max_instructions=2000,
            record_history=False,
            obs=obs,
        )
        times.append(time.perf_counter() - started)
    return sorted(times)[len(times) // 2]

def test_disabled_is_not_slower_than_enabled():
    disabled = _median_wall_s(obs=None)
    enabled = _median_wall_s(obs=True)
    # The observed run does strictly more work per sample; 1.25x absorbs
    # scheduler noise on shared CI machines.
    assert disabled <= enabled * 1.25, (
        f"obs-disabled run ({disabled:.3f}s) slower than obs-enabled "
        f"({enabled:.3f}s): the no-op fast path is not a no-op"
    )
