"""Exact FSM-transition and reconcile event sequences (satellite check).

Each scenario drives one :class:`AdaptiveDvfsController` with a crafted
occupancy trajectory and asserts the *complete* ordered stream of
``fsm_transition`` and ``reconcile`` events published into the probe bus.

Event semantics under test:

* a state *change* without a trigger carries the pre-step dwell counter
  (samples spent in the state being left);
* a *trigger* event carries the reconstructed length of the counting run
  that fired (the triggering sample included; an instant trigger from
  Wait counts as 1);
* reconcile outcomes are ``single`` / ``combine`` / ``cancel`` exactly as
  the paper's Schedule state resolves simultaneous triggers.
"""

from __future__ import annotations

from repro.core.config import AdaptiveConfig
from repro.core.controller import AdaptiveDvfsController
from repro.mcd.domains import DomainId
from repro.obs import ProbeBus


def _drive(config: AdaptiveConfig, occupancies):
    """Run one controller over a trajectory; return its event stream."""
    controller = AdaptiveDvfsController(DomainId.INT, config)
    bus = ProbeBus()
    events = []
    bus.add_sink(events.append)
    controller.attach_probe(bus)
    commands = []
    for index, occupancy in enumerate(occupancies):
        now_ns = 4.0 * (index + 1)
        commands.append(controller.observe(now_ns, occupancy, 1.0))
    return events, commands, bus


def _fsm(events):
    return [
        (e["t_ns"], e["signal"], e["from_state"], e["to_state"],
         e["dwell_samples"], e["trigger"])
        for e in events if e["kind"] == "fsm_transition"
    ]


def _reconciles(events):
    return [
        (e["t_ns"], e["outcome"], e["steps"],
         e["level_trigger"], e["slope_trigger"])
        for e in events if e["kind"] == "reconcile"
    ]


class TestLevelOnlySequence:
    CONFIG = AdaptiveConfig(
        q_ref=4, dw_level=1.0, t_m0=4.0,
        use_slope_signal=False, freq_scaled_down_delay=False,
    )

    def test_exact_transition_and_reconcile_stream(self):
        # occ 4 -> in window; occ 7 twice -> level 3, counter 3 then 6 >= 4.
        events, commands, bus = _drive(self.CONFIG, [4, 7, 7, 4])
        assert _fsm(events) == [
            # entering Count-Up from Wait: no trigger, pre-step dwell
            (8.0, "level", "wait", "count_up", 0, 0),
            # the counting run fires on its 2nd sample (3 + 3 >= t_m0=4)
            (12.0, "level", "count_up", "wait", 2, 1),
        ]
        assert _reconciles(events) == [
            (12.0, "single", 1, 1, 0),
        ]
        assert [c.steps if c else None for c in commands] == [
            None, None, 1, None,
        ]
        assert bus.counters["fsm_transitions.int"] == 2
        assert bus.counters["reconcile.single.int"] == 1
        assert bus.histograms["fsm_dwell_samples.level.int"].max == 2

    def test_act_state_holds_the_fsms(self):
        # The 4th sample lands inside the switching time of the 3rd
        # sample's action: observe() must hold without stepping (and
        # therefore without publishing) anything.
        events, _, _ = _drive(self.CONFIG, [4, 7, 7, 9])
        assert all(e["t_ns"] <= 12.0 for e in events)


class TestCombineSequence:
    CONFIG = AdaptiveConfig(
        q_ref=4, dw_level=1.0, dw_slope=0.0, t_m0=3.0, t_l0=3.0,
        freq_scaled_down_delay=False,
    )

    def test_simultaneous_same_direction_triggers_combine(self):
        # occ 4 -> both signals quiet; occ 8 -> level +4 and slope +4 both
        # fire instantly (4 >= 3), same direction: one double-step action.
        events, commands, bus = _drive(self.CONFIG, [4, 8])
        assert _fsm(events) == [
            (8.0, "level", "wait", "wait", 1, 1),
            (8.0, "slope", "wait", "wait", 1, 1),
        ]
        assert _reconciles(events) == [
            (8.0, "combine", 2, 1, 1),
        ]
        assert commands[-1].steps == 2
        assert bus.counters["reconcile.combine.int"] == 1


class TestCancelSequence:
    CONFIG = AdaptiveConfig(
        q_ref=4, dw_level=1.0, dw_slope=0.0, t_m0=10.0, t_l0=3.0,
        freq_scaled_down_delay=False,
    )

    def test_opposite_triggers_cancel_and_reset(self):
        # occ 12: level 8 starts counting (8 < 10), slope still 0.
        # occ 8: level counter 12 >= 10 fires Up; slope -4 fires Down
        # instantly (4 >= 3).  Opposite directions: mutual cancellation.
        events, commands, bus = _drive(self.CONFIG, [12, 8])
        assert _fsm(events) == [
            (4.0, "level", "wait", "count_up", 0, 0),
            (8.0, "level", "count_up", "wait", 2, 1),
            (8.0, "slope", "wait", "wait", 1, -1),
        ]
        assert _reconciles(events) == [
            (8.0, "cancel", 0, 1, -1),
        ]
        assert commands == [None, None]
        assert bus.counters["reconcile.cancel.int"] == 1
        # cancellation resets both FSMs to Wait
        fsm_events = _fsm(events)
        assert fsm_events[-1][3] == "wait"
        assert fsm_events[-2][3] == "wait"
