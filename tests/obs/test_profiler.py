"""Phase profiler accounting."""

from __future__ import annotations

import pytest

from repro.obs import SAMPLE_PHASES, PhaseProfiler


def test_phase_order_matches_the_simulator():
    assert SAMPLE_PHASES == ("latch", "observe", "slew", "record")


def test_add_accumulates_per_phase():
    prof = PhaseProfiler()
    prof.add("latch", 0.25)
    prof.add("latch", 0.25)
    prof.add("observe", 1.0)
    assert prof.phase_s["latch"] == pytest.approx(0.5)
    assert prof.phase_calls == {"latch": 2, "observe": 1}


def test_run_lifecycle_and_throughput():
    prof = PhaseProfiler()
    prof.run_started()
    prof.run_finished(samples=100)
    assert prof.samples == 100
    assert prof.wall_s > 0.0
    assert prof.samples_per_s == pytest.approx(100 / prof.wall_s)


def test_samples_per_s_zero_without_wall_time():
    assert PhaseProfiler().samples_per_s == 0.0


def test_summary_covers_all_phases_and_shares_sum_to_one():
    prof = PhaseProfiler()
    prof.wall_s = 2.0
    prof.add("latch", 0.5)
    prof.add("observe", 1.5)
    summary = prof.summary()
    assert set(summary["phases"]) >= set(SAMPLE_PHASES)
    assert summary["phases"]["latch"]["share"] == pytest.approx(0.25)
    assert summary["phases"]["slew"] == {
        "wall_s": 0.0, "calls": 0, "share": 0.0,
    }
    total_share = sum(p["share"] for p in summary["phases"].values())
    assert total_share == pytest.approx(1.0)
