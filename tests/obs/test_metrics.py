"""MetricsRegistry behavior: instruments, families, windows, null path."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    NULL_METRICS,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricsRegistry,
    NullMetrics,
)


# -- instruments -------------------------------------------------------


def test_counter_accumulates_and_rejects_negative():
    counter = Counter()
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(4)
    gauge.inc()
    gauge.dec(2)
    assert gauge.value == 3.0


def test_histogram_buckets_are_inclusive_upper_bounds():
    hist = LatencyHistogram(buckets=(0.1, 1.0))
    hist.observe(0.1)   # == first bound -> first bucket (le semantics)
    hist.observe(0.5)
    hist.observe(99.0)  # overflow -> +Inf bucket
    assert hist.count == 3
    assert hist.cumulative() == [1, 2, 3]
    assert hist.total == pytest.approx(99.6)


def test_histogram_validates_bounds():
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=())
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=(1.0, 1.0))
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=(1.0, float("inf")))


def test_histogram_quantile_interpolates():
    hist = LatencyHistogram(buckets=(1.0, 2.0))
    for _ in range(10):
        hist.observe(1.5)
    # all mass in (1, 2]: the median interpolates inside that bucket
    assert 1.0 < hist.quantile(0.5) <= 2.0
    assert hist.quantile(0.0) >= 0.0
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_quantile_empty_is_zero():
    assert LatencyHistogram().quantile(0.9) == 0.0


# -- families + registry -----------------------------------------------


def test_family_children_keyed_by_label_values():
    registry = MetricsRegistry()
    family = registry.counter_family("reqs_total", "requests", ("route",))
    family.labels(route="/a").inc()
    family.labels(route="/a").inc()
    family.labels(route="/b").inc(3)
    assert family.labels(route="/a").value == 2.0
    assert family.labels(route="/b").value == 3.0
    assert family.total() == 5.0


def test_family_rejects_wrong_label_names():
    registry = MetricsRegistry()
    family = registry.counter_family("x_total", "", ("route",))
    with pytest.raises(ValueError):
        family.labels(method="GET")
    with pytest.raises(ValueError):
        family.labels()


def test_invalid_metric_and_label_names_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.counter("0bad")
    with pytest.raises(ValueError):
        registry.counter_family("ok_total", "", ("bad-label",))


def test_reregistration_same_shape_returns_same_family():
    registry = MetricsRegistry()
    a = registry.counter("hits_total")
    b = registry.counter("hits_total")
    a.inc()
    assert b.value == 1.0
    assert registry.family_count == 1


def test_reregistration_with_different_shape_fails():
    registry = MetricsRegistry()
    registry.counter("thing")
    with pytest.raises(ValueError):
        registry.gauge("thing")
    registry.histogram("lat", buckets=(1.0, 2.0))
    with pytest.raises(ValueError):
        registry.histogram("lat", buckets=(1.0, 3.0))
    registry.counter_family("fam", "", ("a",))
    with pytest.raises(ValueError):
        registry.counter_family("fam", "", ("b",))


def test_registry_rejects_tiny_ring():
    with pytest.raises(ValueError):
        MetricsRegistry(ring_size=1)


def test_concurrent_label_resolution_single_child():
    registry = MetricsRegistry()
    family = registry.counter_family("c_total", "", ("k",))
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        for _ in range(100):
            family.labels(k="same").inc()

    threads = [threading.Thread(target=hammer) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(family.children) == 1
    assert family.labels(k="same").value == 800.0


# -- snapshot + windows ------------------------------------------------


def test_snapshot_partitions_by_kind():
    registry = MetricsRegistry()
    registry.counter("c_total").inc(2)
    registry.gauge("g").set(7)
    registry.histogram("h", buckets=(1.0,)).observe(0.5)
    registry.counter_family("f_total", "", ("k",)).labels(k="v").inc()
    snap = registry.snapshot()
    assert snap["counters"]["c_total"] == 2.0
    assert snap["counters"]['f_total{k="v"}'] == 1.0
    assert snap["gauges"]["g"] == 7.0
    hist = snap["histograms"]["h"]
    assert hist["count"] == 1 and hist["sum"] == 0.5
    assert hist["buckets"]["+Inf"] == 1


def test_window_rate_from_ring_samples():
    registry = MetricsRegistry()
    counter = registry.counter("ticks_total")
    registry.record_window(0.0)
    counter.inc(10)
    registry.record_window(2.0)
    assert registry.window("ticks_total") == [(0.0, 0.0), (2.0, 10.0)]
    assert registry.rate("ticks_total") == pytest.approx(5.0)
    assert registry.rate("unknown") == 0.0


def test_rate_respects_window_bound():
    registry = MetricsRegistry()
    counter = registry.counter("ticks_total")
    registry.record_window(0.0)
    counter.inc(1000)
    registry.record_window(100.0)
    counter.inc(10)
    registry.record_window(101.0)
    # only the trailing 60s participates: the jump at t=100 is the start
    assert registry.rate("ticks_total", window_s=60.0) == pytest.approx(10.0)


def test_ring_is_bounded():
    registry = MetricsRegistry(ring_size=4)
    registry.counter("c_total")
    for i in range(10):
        registry.record_window(float(i))
    assert len(registry.window("c_total")) == 4
    assert registry.window("c_total")[0][0] == 6.0


# -- the disabled path -------------------------------------------------


def test_null_metrics_contract():
    assert isinstance(NULL_METRICS, NullMetrics)
    assert NULL_METRICS.enabled is False
    assert MetricsRegistry().enabled is True
    # every accessor works and is inert
    NULL_METRICS.counter("a").inc()
    NULL_METRICS.gauge("b").set(1)
    NULL_METRICS.histogram("c").observe(0.1)
    NULL_METRICS.counter_family("d", "", ("k",)).labels(k="v").inc()
    NULL_METRICS.gauge_family("e", "", ("k",)).labels(k="v").dec()
    NULL_METRICS.histogram_family("f", "", ("k",)).labels(k="v").observe(1)
    NULL_METRICS.record_window(0.0)
    assert NULL_METRICS.family_count == 0
    assert NULL_METRICS.window("a") == []
    assert NULL_METRICS.rate("a") == 0.0
    assert NULL_METRICS.render_prometheus() == ""
    assert NULL_METRICS.snapshot() == {}


def test_null_family_returns_shared_children():
    fam = NULL_METRICS.counter_family("x", "", ("k",))
    assert fam.labels(k="a") is fam.labels(k="b")


def test_default_buckets_are_strictly_increasing():
    assert all(
        b2 > b1 for b1, b2 in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
    )
