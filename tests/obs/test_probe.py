"""Unit tests of the probe/metrics bus."""

from __future__ import annotations

from repro.obs import NULL_PROBE, Histogram, NullProbe, ProbeBus


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.summary() == {
            "count": 0, "sum": 0.0, "min": None, "max": None, "mean": 0.0,
        }

    def test_streaming_stats(self):
        hist = Histogram()
        for value in (4, 2, 9, 2):
            hist.record(value)
        assert hist.count == 4
        assert hist.total == 17.0
        assert hist.min == 2.0
        assert hist.max == 9.0
        assert hist.mean == 17.0 / 4


class TestProbeBus:
    def test_counters_accumulate(self):
        bus = ProbeBus()
        bus.count("steps")
        bus.count("steps", 3)
        assert bus.counters["steps"] == 4

    def test_gauge_last_value_wins(self):
        bus = ProbeBus()
        bus.gauge("occupancy", 7)
        bus.gauge("occupancy", 2)
        assert bus.gauges["occupancy"] == 2

    def test_histogram_auto_creates(self):
        bus = ProbeBus()
        bus.histogram("dwell", 5)
        bus.histogram("dwell", 15)
        assert bus.histograms["dwell"].count == 2
        assert bus.histograms["dwell"].mean == 10.0

    def test_event_fans_out_and_counts(self):
        bus = ProbeBus()
        seen = []
        bus.add_sink(seen.append)
        bus.add_sink(seen.append)  # two sinks both receive every event
        event = bus.event("freq_step", 12.0, domain="int", steps=1)
        assert event == {
            "kind": "freq_step", "t_ns": 12.0, "domain": "int", "steps": 1,
        }
        assert seen == [event, event]
        assert bus.counters["events.freq_step"] == 1

    def test_summary_is_sorted_and_plain(self):
        import json

        bus = ProbeBus()
        bus.count("b")
        bus.count("a")
        bus.gauge("g", 1.5)
        bus.histogram("h", 3)
        summary = bus.summary()
        assert list(summary["counters"]) == ["a", "b"]
        json.dumps(summary)  # JSON-serializable throughout

    def test_enabled_flag(self):
        assert ProbeBus().enabled is True
        assert NULL_PROBE.enabled is False


class TestNullProbe:
    def test_all_methods_are_noops(self):
        probe = NullProbe()
        probe.count("x")
        probe.gauge("x", 1)
        probe.histogram("x", 1)
        probe.event("kind", 0.0, field=1)
        assert probe.summary() == {}

    def test_shared_singleton(self):
        from repro.dvfs.base import FullSpeedController
        from repro.mcd.domains import DomainId

        controller = FullSpeedController(DomainId.INT)
        assert controller.probe is NULL_PROBE
