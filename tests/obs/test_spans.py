"""Span tracing: IDs, parent linkage, pickling, trees, probe events."""

from __future__ import annotations

import pickle

import pytest

from repro.obs.probe import ProbeBus
from repro.obs.schema import validate_event
from repro.obs.spans import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanContext,
    SpanRecorder,
    new_id,
    start_worker_span,
)
from repro.obs.trace import chrome_trace_events


def _recorder(**kwargs) -> SpanRecorder:
    """A recorder on a deterministic fake clock (1ms per start/record)."""
    ticks = iter(range(0, 10_000_000, 1_000_000))
    return SpanRecorder(clock_ns=lambda: next(ticks), **kwargs)


def test_new_id_is_hex_and_sized():
    assert len(new_id()) == 16
    assert len(new_id(16)) == 32
    int(new_id(), 16)  # parses as hex


def test_root_span_gets_fresh_trace_and_empty_parent():
    recorder = _recorder()
    span = recorder.start("root")
    assert span.parent_id == ""
    assert len(span.trace_id) == 32
    assert span.span_id != span.trace_id


def test_child_inherits_trace_and_links_parent():
    recorder = _recorder()
    root = recorder.start("root")
    child = recorder.start("child", parent=root)
    grandchild = recorder.start("grandchild", parent=child.context)
    assert child.trace_id == root.trace_id == grandchild.trace_id
    assert child.parent_id == root.span_id
    assert grandchild.parent_id == child.span_id


def test_end_is_idempotent_and_records_once():
    recorder = _recorder()
    span = recorder.start("s")
    first = span.end()
    second = span.end()
    assert first == second
    assert recorder.recorded == 1
    assert first["dur_ns"] >= 0


def test_context_manager_marks_errors():
    recorder = _recorder()
    with pytest.raises(RuntimeError):
        with recorder.start("boom") as span:
            raise RuntimeError("nope")
    (finished,) = recorder.spans()
    assert finished["attrs"]["error"] == "RuntimeError: nope"
    assert span.end_ns is not None


def test_span_context_pickles_and_round_trips():
    ctx = SpanContext(trace_id="a" * 32, span_id="b" * 16)
    assert pickle.loads(pickle.dumps(ctx)) == ctx
    assert SpanContext.from_dict(ctx.to_dict()) == ctx


def test_worker_span_stitches_across_the_boundary():
    """The full cross-process protocol, minus the process."""
    recorder = _recorder()
    root = recorder.start("submit")
    # -- worker side: context arrives as a plain dict ------------------
    shipped = root.context.to_dict()
    shipped = pickle.loads(pickle.dumps(shipped))
    worker = start_worker_span("job:x", shipped, attrs={"seed": 3})
    payload = worker.end()
    payload = pickle.loads(pickle.dumps(payload))
    # -- submitting side records the shipped dict ----------------------
    recorder.record(payload)
    root.end()
    spans = recorder.spans(root.trace_id)
    assert {s["name"] for s in spans} == {"submit", "job:x"}
    worker_span = next(s for s in spans if s["name"] == "job:x")
    assert worker_span["trace_id"] == root.trace_id
    assert worker_span["parent_id"] == root.span_id
    assert worker_span["attrs"]["seed"] == 3
    assert "pid" in worker_span["attrs"]


def test_tree_nests_children_under_parents():
    recorder = _recorder()
    root = recorder.start("root")
    a = recorder.start("a", parent=root)
    recorder.start("a1", parent=a).end()
    a.end()
    recorder.start("b", parent=root).end()
    root.end()
    (tree,) = recorder.tree(root.trace_id)
    assert tree["span"]["name"] == "root"
    names = [child["span"]["name"] for child in tree["children"]]
    assert sorted(names) == ["a", "b"]
    a_node = next(c for c in tree["children"] if c["span"]["name"] == "a")
    assert [c["span"]["name"] for c in a_node["children"]] == ["a1"]


def test_orphan_spans_become_roots():
    recorder = _recorder()
    recorder.record({
        "name": "orphan", "trace_id": "t1", "span_id": "s1",
        "parent_id": "evicted", "start_ns": 0, "end_ns": 1, "dur_ns": 1,
        "attrs": {},
    })
    (tree,) = recorder.tree("t1")
    assert tree["span"]["name"] == "orphan"


def test_ring_bound_evicts_oldest():
    recorder = SpanRecorder(max_spans=2)
    for i in range(5):
        recorder.start(f"s{i}").end()
    assert recorder.recorded == 5
    assert [s["name"] for s in recorder.spans()] == ["s3", "s4"]
    with pytest.raises(ValueError):
        SpanRecorder(max_spans=0)


def test_probe_events_validate_against_schema():
    bus = ProbeBus()
    events = []
    bus.add_sink(events.append)
    recorder = SpanRecorder(probe=bus)
    root = recorder.start("root")
    recorder.start("child", parent=root).end()
    root.end()
    kinds = [e["kind"] for e in events]
    assert kinds.count("span_start") == 2
    assert kinds.count("span_end") == 2
    for event in events:
        assert validate_event(event) == [], (
            f"span probe event fails schema: {event}"
        )


def test_chrome_events_one_slice_per_span_with_pid_tracks():
    recorder = _recorder()
    root = recorder.start("root")
    recorder.record({
        "name": "worker", "trace_id": root.trace_id, "span_id": "w1",
        "parent_id": root.span_id, "start_ns": 100, "end_ns": 400,
        "dur_ns": 300, "attrs": {"pid": 4242},
    })
    root.end()
    events = recorder.chrome_events(root.trace_id)
    slices = [e for e in events if e.get("ph") == "X"]
    assert len(slices) == 2
    worker = next(e for e in slices if e["name"] == "worker")
    local = next(e for e in slices if e["name"] == "root")
    assert worker["tid"] != local["tid"], "distinct pids get distinct tracks"
    assert worker["dur"] == pytest.approx(0.3)  # 300ns -> 0.3us
    assert worker["args"]["trace_id"] == root.trace_id


def test_span_end_probe_events_render_in_chrome_trace():
    """The simulator-side trace writer understands span_end events too."""
    bus = ProbeBus()
    events = []
    bus.add_sink(events.append)
    recorder = SpanRecorder(probe=bus)
    recorder.start("timed").end()
    out = chrome_trace_events(events)
    spans = [e for e in out if e["name"] == "span:timed"]
    assert len(spans) == 1 and spans[0]["ph"] == "X"


def test_null_tracer_contract():
    assert isinstance(NULL_TRACER, NullTracer)
    assert NULL_TRACER.enabled is False
    assert SpanRecorder().enabled is True
    span = NULL_TRACER.start("anything", attrs={"x": 1})
    span.set_attr("y", 2)
    assert span.end() == {}
    with NULL_TRACER.start("ctx"):
        pass
    NULL_TRACER.record({"name": "ignored"})
    assert NULL_TRACER.spans() == []
    assert NULL_TRACER.tree("t") == []
    assert NULL_TRACER.chrome_events() == []
    assert NULL_TRACER.summary() == {
        "started": 0, "recorded": 0, "retained": 0,
    }


def test_span_to_dict_before_end_uses_start():
    span = Span("open", trace_id="t", span_id="s")
    payload = span.to_dict()
    assert payload["dur_ns"] == 0
    assert payload["end_ns"] == payload["start_ns"]
