"""Ablation: the basic-time-delay ratio T_m0/T_l0 in the real system.

Remark 3's 2-8x rule comes from the linearized analysis; this ablation
checks it holds in the discrete, noisy, saturating simulator: sweeping the
delay ratio on two representative benchmarks (one fast-varying, one steady)
and reporting energy/performance/EDP plus the controller activity.  Very
small ratios over-react (more switching); very sluggish level delays save
less energy.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.power.metrics import (
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)
from repro.workloads.suite import get_benchmark

RATIOS = (1.0, 2.0, 6.25, 8.0, 25.0)
BENCHMARKS = ("gsm-decode", "gzip")


def _measure(name: str, ratio: float, baseline):
    run = run_experiment(
        get_benchmark(name),
        scheme="adaptive",
        max_instructions=SWEEP_INSTRUCTIONS,
        record_history=False,
        adaptive_overrides={"t_m0": ratio * 8.0, "t_l0": 8.0},
    )
    return {
        "energy_savings_pct": energy_savings_percent(baseline, run.metrics),
        "perf_degradation_pct": performance_degradation_percent(baseline, run.metrics),
        "edp_improvement_pct": edp_improvement_percent(baseline, run.metrics),
        "transitions": sum(run.transitions.values()),
    }


def _sweep():
    rows = []
    by_key = {}
    for name in BENCHMARKS:
        baseline = run_experiment(
            get_benchmark(name),
            scheme="full-speed",
            max_instructions=SWEEP_INSTRUCTIONS,
            record_history=False,
        ).metrics
        for ratio in RATIOS:
            result = _measure(name, ratio, baseline)
            rows.append(
                [
                    name,
                    f"{ratio:g}",
                    result["energy_savings_pct"],
                    result["perf_degradation_pct"],
                    result["edp_improvement_pct"],
                    result["transitions"],
                ]
            )
            by_key[(name, ratio)] = result
    return rows, by_key


def test_ablation_delay_ratio(benchmark):
    rows, by_key = run_once(benchmark, _sweep)
    table = format_table(
        ["benchmark", "T_m0/T_l0", "energy savings %", "perf degradation %",
         "EDP improvement %", "transitions"],
        rows,
        title="Ablation: delay-ratio sweep in the full simulator (Remark 3)",
    )
    emit("ablation_delay_ratio", table)

    for name in BENCHMARKS:
        # an over-eager level signal (ratio 1) must switch at least as often
        # as the paper's setting (6.25)
        assert (
            by_key[(name, 1.0)]["transitions"]
            >= by_key[(name, 6.25)]["transitions"]
        )
        # an extremely sluggish level signal saves less energy
        assert (
            by_key[(name, 25.0)]["energy_savings_pct"]
            <= by_key[(name, 2.0)]["energy_savings_pct"] + 0.5
        )
