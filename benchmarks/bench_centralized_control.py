"""Extension bench: decentralized vs centralized adaptive control.

The paper controls each domain from local queue information only and notes
that a centralized scheme "may work better" but is an open problem.  This
bench measures the exploratory coordinated variant (down-steps vetoed while
any sibling queue is backlogged) against the paper's decentralized scheme
across steady, fast-varying and memory-bound benchmarks.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.comparison import compare_schemes
from repro.harness.reporting import format_table

BENCHMARKS = ("mpeg2-decode", "gsm-decode", "gzip", "mcf", "applu")


def _sweep():
    results = {}
    for name in BENCHMARKS:
        comp = compare_schemes(
            name,
            schemes=("adaptive", "centralized"),
            max_instructions=SWEEP_INSTRUCTIONS,
        )
        results[name] = comp
    return results


def test_centralized_control(benchmark):
    results = run_once(benchmark, _sweep)
    rows = []
    for name, comp in results.items():
        for scheme in ("adaptive", "centralized"):
            r = comp.result_for(scheme)
            rows.append(
                [name, scheme, r.energy_savings_pct, r.perf_degradation_pct,
                 r.edp_improvement_pct, r.transitions]
            )
    table = format_table(
        ["benchmark", "scheme", "energy savings %", "perf degradation %",
         "EDP improvement %", "transitions"],
        rows,
        title="Extension: decentralized (paper) vs centralized adaptive control",
    )
    emit("centralized_control", table)

    for name, comp in results.items():
        adaptive = comp.result_for("adaptive")
        central = comp.result_for("centralized")
        # the coordinated variant still saves energy everywhere ...
        assert central.energy_savings_pct > 0.0, name
        # ... and never degrades performance much beyond the local scheme
        assert central.perf_degradation_pct <= adaptive.perf_degradation_pct + 1.5, name
