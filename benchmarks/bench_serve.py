"""Service load test: controller-step throughput + coalesced-run pipeline.

Boots a real :class:`repro.serve.app.ServeApp` on a background thread and
drives it over real sockets with the stdlib client:

* **controller-step throughput** -- the paper's adaptive FSM as a
  stateless endpoint, hammered over one keep-alive connection.  This is
  the service's hot cheap path; the acceptance floor is 50 req/s
  sustained and typical numbers are orders of magnitude above it.
* **coalesced run pipeline** -- a burst of concurrent single-run
  submissions, measured end-to-end (submit -> SSE completion -> result
  fetched by content hash) together with how tightly the coalescer
  packed them into ``run_batch`` ticks.

Writes ``benchmarks/results/BENCH_serve.json``; the CI perf-regression
job gates ``controller_step.req_per_s`` against the committed baseline
(direction-aware, so the number may only improve without bound).
"""

from __future__ import annotations

import json
import math
import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.harness.reporting import format_table
from repro.serve.app import ServeConfig
from repro.serve.client import ServeClient
from repro.serve.testing import BackgroundServer

#: controller-step load: requests per measurement and trajectory length.
STEP_REQUESTS = 400
STEP_SAMPLES = 64
#: acceptance floor from the service's requirements.
MIN_STEP_REQ_PER_S = 50.0

#: coalesced-run burst: N submissions, batched at most MAX_BATCH per tick.
RUN_BURST = 8
MAX_BATCH = 4
RUN_INSTRUCTIONS = 20_000


def _occupancy(samples: int) -> list:
    """A deterministic sawtooth trajectory exercising both FSM directions."""
    return [abs((i % 29) - 14) for i in range(samples)]


def _measure():
    config = ServeConfig(
        port=0, max_batch=MAX_BATCH, max_delay_s=0.05, executor_threads=4
    )
    with BackgroundServer(config) as server:
        client = ServeClient(*server.address)

        # -- controller-step throughput (one keep-alive connection) ----
        payload = {"occupancy": _occupancy(STEP_SAMPLES)}
        client.controller_step(payload)  # warm the connection + code paths
        started = time.perf_counter()
        for _ in range(STEP_REQUESTS):
            client.controller_step(payload)
        step_wall = time.perf_counter() - started

        # -- coalesced run burst, submit -> SSE -> result by hash ------
        started = time.perf_counter()
        submissions = [
            client.submit_run(
                {
                    "benchmark": "gsm-decode",
                    "scheme": "adaptive",
                    "seed": seed,
                    "max_instructions": RUN_INSTRUCTIONS,
                }
            )
            for seed in range(1, RUN_BURST + 1)
        ]
        for sub in submissions:
            final = client.wait_for_job(sub["id"])
            assert final.get("state") == "done", final
        results = [client.get_result(sub["result_sha"]) for sub in submissions]
        run_wall = time.perf_counter() - started
        assert all(r["benchmark"] == "gsm-decode" for r in results)

        stats = client.stats()
        client.close()
    return step_wall, run_wall, stats


def test_serve_load(benchmark):
    step_wall, run_wall, stats = run_once(benchmark, _measure)

    step_req_per_s = STEP_REQUESTS / step_wall
    coalescer = stats["coalescer"]
    runs_per_call = coalescer["batched_runs"] / coalescer["run_batch_calls"]
    max_calls = math.ceil(RUN_BURST / MAX_BATCH)

    payload = {
        "controller_step": {
            "requests": STEP_REQUESTS,
            "samples_per_request": STEP_SAMPLES,
            "wall_s": step_wall,
            "req_per_s": step_req_per_s,
        },
        "runs": {
            "submitted": RUN_BURST,
            "max_batch": MAX_BATCH,
            "wall_s": run_wall,
            "runs_per_s": RUN_BURST / run_wall,
            "run_batch_calls": coalescer["run_batch_calls"],
            "runs_per_call": runs_per_call,
        },
        "requests_served": stats["counters"].get("events.serve_request", 0),
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, "BENCH_serve.json"), "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    table = format_table(
        ["measurement", "value"],
        [
            ["controller-step req/s", f"{step_req_per_s:,.0f}"],
            ["controller-step wall", f"{step_wall:.3f} s ({STEP_REQUESTS} req)"],
            ["run burst wall", f"{run_wall:.3f} s ({RUN_BURST} runs)"],
            ["run_batch calls", str(coalescer["run_batch_calls"])],
            ["runs per call", f"{runs_per_call:.1f}"],
        ],
        title="DVFS service load test",
    )
    emit("serve_load", table)

    # acceptance: sustained controller-step throughput over the floor
    assert step_req_per_s >= MIN_STEP_REQ_PER_S, (
        f"controller-step endpoint too slow: {step_req_per_s:.1f} req/s "
        f"< {MIN_STEP_REQ_PER_S} req/s floor"
    )
    # the burst must actually have been coalesced, not run one-by-one
    assert coalescer["run_batch_calls"] <= max_calls, (
        f"coalescer degraded: {coalescer['run_batch_calls']} run_batch "
        f"calls for {RUN_BURST} submissions (max {max_calls})"
    )
