"""Figure 9 (reconstructed): per-benchmark energy savings, three schemes.

The supplied paper text truncates before the results figures; this bench
regenerates the per-benchmark energy-savings comparison from the paper's
stated aggregate: the adaptive scheme achieves significant savings on all
benchmarks, close to the best fixed-interval scheme on average
(provenance = "reconstructed", see DESIGN.md / EXPERIMENTS.md).
"""

from conftest import emit, run_once

from repro.harness.comparison import aggregate
from repro.harness.reporting import format_table


def test_fig9_energy_savings(benchmark, full_sweep):
    sweep = run_once(benchmark, lambda: full_sweep)

    rows = []
    for comp in sweep:
        rows.append(
            [
                comp.benchmark,
                comp.suite,
                comp.result_for("adaptive").energy_savings_pct,
                comp.result_for("attack-decay").energy_savings_pct,
                comp.result_for("pid").energy_savings_pct,
            ]
        )
    means = {s: aggregate(sweep, s)["energy_savings_pct"]
             for s in ("adaptive", "attack-decay", "pid")}
    rows.append(["MEAN", "", means["adaptive"], means["attack-decay"], means["pid"]])

    table = format_table(
        ["benchmark", "suite", "adaptive dE%", "attack-decay dE%", "pid dE%"],
        rows,
        title="Figure 9 (reconstructed): energy savings vs full-speed baseline",
    )
    emit("fig9_energy_savings", table)

    # Shape assertions from the paper's stated results:
    # adaptive saves energy on every studied benchmark ...
    for comp in sweep:
        assert comp.result_for("adaptive").energy_savings_pct > 0.0, comp.benchmark
    # ... lands within ~2 points of the best fixed-interval scheme on average
    best_fixed = max(means["attack-decay"], means["pid"])
    assert means["adaptive"] > best_fixed - 2.0
    # ... and clearly beats the attack/decay scheme overall
    assert means["adaptive"] > means["attack-decay"]
