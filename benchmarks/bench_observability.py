"""Observability perf tracking: samples/sec, phase split, disabled overhead.

Runs one mid-size adaptive simulation three ways -- observability off,
metrics-only, and full tracing -- and records simulator throughput
(sampling periods per wall-second) plus the per-phase wall-time split
reported by the :class:`~repro.obs.PhaseProfiler`.

Besides the usual human-readable table, this bench writes
``benchmarks/results/BENCH_obs.json`` so successive PRs can diff the
perf trajectory mechanically (the ``samples_per_s`` and ``phases``
keys are the tracked series; ``overhead_ratio`` guards the no-op path).
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.engine import SweepEngine
from repro.engine.jobs import SweepJob
from repro.harness.experiment import run_experiment
from repro.harness.persistence import result_to_dict
from repro.harness.reporting import format_table
from repro.obs import SAMPLE_PHASES, ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanRecorder

BENCHMARK = "adpcm-encode"
INSTRUCTIONS = 50_000
ENGINE_INSTRUCTIONS = 10_000
ENGINE_SEEDS = (1, 2, 3, 4)


def _timed_run(obs):
    started = time.perf_counter()
    result = run_experiment(
        BENCHMARK,
        scheme="adaptive",
        max_instructions=INSTRUCTIONS,
        record_history=False,
        obs=obs,
    )
    return result, time.perf_counter() - started


def _engine_jobs():
    return [
        SweepJob.make(
            BENCHMARK,
            scheme="adaptive",
            seed=seed,
            max_instructions=ENGINE_INSTRUCTIONS,
        )
        for seed in ENGINE_SEEDS
    ]


def _canonical(outcomes):
    return json.dumps(
        [result_to_dict(o.result) for o in outcomes], sort_keys=True
    )


def _measure_engine():
    """Engine-level metrics overhead plus the byte-identical guard.

    The same job list runs through a default (metrics-off) engine and a
    fully metered one; the simulation payloads must serialize to the
    same bytes -- observability may never perturb results -- and the
    wall-time ratio tracks what turning metrics on costs per run.
    """
    started = time.perf_counter()
    plain = SweepEngine().run(_engine_jobs())
    disabled_s = time.perf_counter() - started

    started = time.perf_counter()
    metered = SweepEngine(
        metrics=MetricsRegistry(), tracer=SpanRecorder()
    ).run(_engine_jobs())
    metrics_s = time.perf_counter() - started

    assert all(o.ok for o in plain) and all(o.ok for o in metered)
    assert _canonical(plain) == _canonical(metered), (
        "metered engine run produced different simulation payloads"
    )
    return {"engine_disabled_s": disabled_s, "engine_metrics_s": metrics_s}


def _measure():
    _, disabled_s = _timed_run(obs=None)
    metrics_result, metrics_s = _timed_run(
        obs=ObsConfig(trace=False, profile=True)
    )
    traced_result, traced_s = _timed_run(obs=ObsConfig())
    data = {
        "disabled_s": disabled_s,
        "metrics_s": metrics_s,
        "traced_s": traced_s,
        "metrics_profile": metrics_result.probe_summary["profile"],
        "traced_profile": traced_result.probe_summary["profile"],
        "traced_counters": traced_result.probe_summary["counters"],
    }
    data.update(_measure_engine())
    return data


def test_observability_overhead(benchmark):
    data = run_once(benchmark, _measure)

    profile = data["traced_profile"]
    samples = profile["samples"]
    payload = {
        "benchmark": BENCHMARK,
        "instructions": INSTRUCTIONS,
        "samples": samples,
        "samples_per_s": {
            "disabled": samples / data["disabled_s"],
            "metrics_only": data["metrics_profile"]["samples_per_s"],
            "full_trace": profile["samples_per_s"],
        },
        "overhead_ratio": {
            "metrics_only": data["metrics_s"] / data["disabled_s"],
            "full_trace": data["traced_s"] / data["disabled_s"],
            "engine_metrics": data["engine_metrics_s"]
            / data["engine_disabled_s"],
        },
        "engine_runs_per_s": {
            "disabled": len(ENGINE_SEEDS) / data["engine_disabled_s"],
            "metrics": len(ENGINE_SEEDS) / data["engine_metrics_s"],
        },
        "phases": profile["phases"],
        "events": data["traced_counters"].get("events.sample", 0)
        + data["traced_counters"].get("events.fsm_transition", 0)
        + data["traced_counters"].get("events.freq_step", 0),
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_obs.json")
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        ["disabled", f"{payload['samples_per_s']['disabled']:,.0f}", "1.00"],
        [
            "metrics only",
            f"{payload['samples_per_s']['metrics_only']:,.0f}",
            f"{payload['overhead_ratio']['metrics_only']:.2f}",
        ],
        [
            "full trace",
            f"{payload['samples_per_s']['full_trace']:,.0f}",
            f"{payload['overhead_ratio']['full_trace']:.2f}",
        ],
        [
            "engine (metrics off)",
            f"{payload['engine_runs_per_s']['disabled']:.2f} runs/s",
            "1.00",
        ],
        [
            "engine (metered)",
            f"{payload['engine_runs_per_s']['metrics']:.2f} runs/s",
            f"{payload['overhead_ratio']['engine_metrics']:.2f}",
        ],
    ]
    for phase in SAMPLE_PHASES:
        stats = profile["phases"][phase]
        rows.append(
            [
                f"  phase {phase}",
                f"{stats['wall_s'] * 1e3:.1f} ms",
                f"{stats['share']:.0%} of run",
            ]
        )
    table = format_table(
        ["configuration", "samples/s (or phase wall)", "vs disabled"],
        rows,
        title=(
            f"Observability overhead ({BENCHMARK}, "
            f"{INSTRUCTIONS:,} instructions, {samples:,} samples)"
        ),
    )
    emit("observability_overhead", table + f"\n[json written to {json_path}]")

    # sanity on the tracked series, generous enough for shared CI boxes
    assert samples > 0
    assert payload["samples_per_s"]["full_trace"] > 0
    assert payload["overhead_ratio"]["full_trace"] < 10.0
    # the engine-level registry path is per-job, not per-sample: its cost
    # must stay in the noise (the 1.02x acceptance bar lives in the
    # baseline gate; this in-bench bound only catches gross regressions)
    assert payload["overhead_ratio"]["engine_metrics"] < 1.25
