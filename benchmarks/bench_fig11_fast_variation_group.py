"""Figure 11 (reconstructed): the fast-workload-variation group.

The paper's headline group result: on applications whose workload swings are
faster than a fixed interval, the adaptive scheme's self-tuned reaction time
wins clearly -- on average ~8% better than the PID scheme [23] and nearly
3-fold better than attack/decay [9] (measured on EDP-style improvement).
This bench regenerates the per-benchmark EDP improvements for the group
identified by the Section-5.2 classification and checks the ordering.
"""

from conftest import emit, run_once

from repro.harness.comparison import aggregate
from repro.harness.reporting import format_table


def test_fig11_fast_variation_group(benchmark, full_sweep):
    sweep = run_once(benchmark, lambda: full_sweep)
    group = [c for c in sweep if c.fast_varying]
    assert len(group) >= 4

    rows = []
    for comp in group:
        rows.append(
            [
                comp.benchmark,
                comp.result_for("adaptive").edp_improvement_pct,
                comp.result_for("attack-decay").edp_improvement_pct,
                comp.result_for("pid").edp_improvement_pct,
            ]
        )
    means = {s: aggregate(group, s)["edp_improvement_pct"]
             for s in ("adaptive", "attack-decay", "pid")}
    rows.append(["MEAN", means["adaptive"], means["attack-decay"], means["pid"]])

    table = format_table(
        ["benchmark", "adaptive EDP%", "attack-decay EDP%", "pid EDP%"],
        rows,
        title=(
            "Figure 11 (reconstructed): EDP improvement on the "
            "fast-workload-variation group"
        ),
    )
    emit("fig11_fast_variation_group", table)

    # The paper's group ordering: adaptive > pid > attack-decay, with a
    # large multiple over attack/decay.
    assert means["adaptive"] > means["pid"]
    assert means["adaptive"] > means["attack-decay"]
    if means["attack-decay"] > 0:
        assert means["adaptive"] > 2.0 * means["attack-decay"]
    # per-benchmark: adaptive never loses badly to pid inside the group
    for comp in group:
        a = comp.result_for("adaptive").edp_improvement_pct
        p = comp.result_for("pid").edp_improvement_pct
        assert a > p - 1.0, comp.benchmark
