"""Table 3 (reconstructed): the PID scheme at shorter interval lengths.

The paper's closing experiment: could the fixed-interval scheme close the
gap on fast-varying applications simply by shrinking its interval?  This
bench sweeps the PID interval over {10k, 5k, 2.5k, 1k} cycles on the
fast-variation group and compares each against the adaptive scheme.
Shorter intervals react sooner but average fewer samples (noisier decisions)
and act more often; the gap narrows but does not close.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.comparison import compare_schemes, aggregate
from repro.harness.reporting import format_table
from repro.workloads.suite import FAST_VARYING_GROUP

INTERVALS_NS = (10_000.0, 5_000.0, 2_500.0, 1_000.0)


def _sweep():
    results = {}
    for interval in INTERVALS_NS:
        comps = [
            compare_schemes(
                name,
                schemes=("pid",),
                max_instructions=SWEEP_INSTRUCTIONS,
                pid_interval_ns=interval,
            )
            for name in FAST_VARYING_GROUP
        ]
        results[interval] = aggregate(comps, "pid")
    adaptive = aggregate(
        [
            compare_schemes(
                name, schemes=("adaptive",), max_instructions=SWEEP_INSTRUCTIONS
            )
            for name in FAST_VARYING_GROUP
        ],
        "adaptive",
    )
    return results, adaptive


def test_table3_interval_sweep(benchmark):
    results, adaptive = run_once(benchmark, _sweep)

    rows = []
    for interval in INTERVALS_NS:
        agg = results[interval]
        rows.append(
            [
                f"pid @ {interval / 1000:.1f}k cycles",
                agg["energy_savings_pct"],
                agg["perf_degradation_pct"],
                agg["edp_improvement_pct"],
                agg["transitions"],
            ]
        )
    rows.append(
        [
            "adaptive",
            adaptive["energy_savings_pct"],
            adaptive["perf_degradation_pct"],
            adaptive["edp_improvement_pct"],
            adaptive["transitions"],
        ]
    )
    table = format_table(
        ["scheme", "energy savings %", "perf degradation %", "EDP improvement %",
         "mean transitions"],
        rows,
        title=(
            "Table 3 (reconstructed): PID at shorter intervals vs adaptive, "
            "fast-variation group"
        ),
    )
    emit("table3_interval_sweep", table)

    # Shape: even the shortest interval does not beat the adaptive scheme's
    # EDP on this group.
    best_pid = max(results[i]["edp_improvement_pct"] for i in INTERVALS_NS)
    assert adaptive["edp_improvement_pct"] > best_pid - 0.5
