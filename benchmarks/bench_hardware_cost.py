"""Figure 5 / hardware claim: decision-logic cost comparison.

Regenerates the gate-count comparison behind the paper's "smaller and
cheaper hardware" argument: the adaptive decision logic is an adder, a
comparator, a 5-state FSM and an 8-bit counter per signal, while the
fixed-interval schemes additionally need per-interval arithmetic
(multipliers or lookup tables for the PID law).
"""

from conftest import emit, run_once

from repro.core.hardware import (
    adaptive_decision_logic_cost,
    attack_decay_decision_logic_cost,
    pid_decision_logic_cost,
)
from repro.harness.reporting import format_table
from repro.mcd.domains import MachineConfig


def _tables():
    adaptive = adaptive_decision_logic_cost(machine=MachineConfig())
    pid = pid_decision_logic_cost()
    attack = attack_decay_decision_logic_cost()
    return adaptive, pid, attack


def test_hardware_cost(benchmark):
    adaptive, pid, attack = run_once(benchmark, _tables)

    rows = []
    for cost in (adaptive, attack, pid):
        for block, gates in cost.blocks:
            rows.append([cost.scheme, block, gates])
        rows.append([cost.scheme, "TOTAL", cost.total_gates])
    table = format_table(
        ["scheme", "block", "NAND2-equivalent gates"],
        rows,
        title="Per-domain DVFS decision-logic cost (paper Fig 5 + Sec 3.1 claim)",
    )
    emit("hardware_cost", table)

    assert adaptive.total_gates < attack.total_gates < pid.total_gates
    assert adaptive.total_gates * 3 < pid.total_gates
