"""Shared infrastructure for the benchmark harness.

Each ``bench_*.py`` file regenerates one table or figure of the paper (see
DESIGN.md section 4).  Conventions:

* pytest-benchmark wraps the expensive computation via
  ``benchmark.pedantic(..., rounds=1)`` -- these are experiment
  regenerations, not microbenchmarks, so one round is the measurement.
* every bench writes its regenerated table/series to
  ``benchmarks/results/<name>.txt`` (and CSV where a series is involved) so
  the output survives pytest's capture; it is also printed.
* the 17-benchmark x 4-scheme sweep is computed once per session and shared
  by the Figure 9/10/11 benches.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.engine import EngineConfig, SweepEngine
from repro.harness.comparison import BenchmarkComparison, sweep
from repro.workloads.suite import MEDIABENCH, SPEC2000_FP, SPEC2000_INT

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: instruction window for the full sweeps: long enough for the regulator's
#: 73.3 ns/MHz slew to develop meaningful frequency excursions, short enough
#: that 17 benchmarks x 4 schemes finishes in minutes.
SWEEP_INSTRUCTIONS = 100_000

ALL_BENCHMARKS = MEDIABENCH + SPEC2000_INT + SPEC2000_FP


def emit(name: str, text: str) -> None:
    """Persist a regenerated table under benchmarks/results/ and print it."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def sweep_window(spec) -> "int | None":
    """Per-benchmark instruction window for the sweeps.

    Most benchmarks are truncated to SWEEP_INSTRUCTIONS.  epic-decode runs
    full length: its phases are deliberately long (every phase must outlast
    the regulator's 55 us full-range ramp -- see the spec's comment), and
    proportional truncation would destroy exactly that property.
    """
    if spec.name == "epic-decode":
        return None
    return SWEEP_INSTRUCTIONS


@pytest.fixture(scope="session")
def full_sweep() -> List[BenchmarkComparison]:
    """The main evaluation sweep: every benchmark under every scheme.

    Runs through the sweep engine: the 17 x 4 grid fans out over a
    process pool (``REPRO_SWEEP_JOBS`` overrides the worker count; set it
    to 1 to force serial in-process execution).  The result cache is off
    by default so CI-style runs always measure fresh simulations; export
    ``REPRO_SWEEP_CACHE=<dir>`` to reuse results across sessions while
    iterating locally.
    """
    workers = int(
        os.environ.get("REPRO_SWEEP_JOBS", str(min(os.cpu_count() or 1, 8)))
    )
    engine = SweepEngine(
        EngineConfig(
            workers=workers,
            cache_dir=os.environ.get("REPRO_SWEEP_CACHE") or None,
        )
    )
    return sweep(
        ALL_BENCHMARKS,
        schemes=("adaptive", "attack-decay", "pid"),
        engine=engine,
        window=sweep_window,
    )


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
