"""Compare fresh benchmark JSON against committed baselines (stdlib only).

CI's perf-regression job stashes the committed ``benchmarks/results/BENCH_*``
baselines, re-runs the perf benches, and calls this script to gate the
delta.  The gate is deliberately narrow:

* only *ratio-style* metrics are gated (throughputs, speedups, overhead
  ratios) -- they track machine-relative performance, so a 25% swing on the
  same runner class means a real change, not runner lottery;
* the tolerance is direction-aware: a metric may always *improve* without
  bound, and only a degradation beyond ``--tolerance`` (default 25%) fails;
* absolute wall-clock values are reported but never gated -- they say more
  about the runner than the code.

``--warn-only`` (used for fork PRs, whose runners we know nothing about)
prints the same report but always exits 0.

Usage::

    python benchmarks/compare_baselines.py \
        --baseline-dir /tmp/bench-baselines --current-dir benchmarks/results
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Tuple

#: gated metrics per baseline file: (dotted path, good direction)
TRACKED = {
    "BENCH_simcore.json": [
        ("cores.ref.instr_per_s", "higher"),
        ("cores.fast.instr_per_s", "higher"),
        ("speedup", "higher"),
        ("batch_cores.batch.instr_per_s", "higher"),
        ("batch_speedup_64", "higher"),
    ],
    "BENCH_obs.json": [
        ("samples_per_s.disabled", "higher"),
        ("samples_per_s.full_trace", "higher"),
        ("overhead_ratio.full_trace", "lower"),
        ("engine_runs_per_s.disabled", "higher"),
        ("engine_runs_per_s.metrics", "higher"),
        ("overhead_ratio.engine_metrics", "lower"),
    ],
    "BENCH_serve.json": [
        ("controller_step.req_per_s", "higher"),
    ],
}


def _lookup(payload: Any, dotted: str) -> float:
    value = payload
    for part in dotted.split("."):
        value = value[part]
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{dotted} is not numeric: {value!r}")
    return float(value)


def compare_file(
    name: str, baseline_path: str, current_path: str, tolerance: float
) -> Tuple[List[str], List[str]]:
    """Returns (report lines, regression lines) for one baseline file."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(current_path) as handle:
        current = json.load(handle)

    report: List[str] = [f"{name}:"]
    regressions: List[str] = []
    for dotted, direction in TRACKED[name]:
        try:
            base = _lookup(baseline, dotted)
            cur = _lookup(current, dotted)
        except (KeyError, TypeError) as exc:
            # a missing tracked metric is a gate failure, not a skip --
            # otherwise renaming a key silently disables its gate
            regressions.append(f"{name}: {dotted}: unreadable ({exc!r})")
            continue
        if base == 0:
            regressions.append(f"{name}: {dotted}: baseline is zero")
            continue
        # normalize so "worse" is always a drop below 1.0
        ratio = cur / base if direction == "higher" else base / cur
        marker = "ok"
        if ratio < 1.0 - tolerance:
            marker = "REGRESSION"
            regressions.append(
                f"{name}: {dotted} degraded {100 * (1 - ratio):.1f}% "
                f"(baseline {base:.4g}, current {cur:.4g}, "
                f"tolerance {100 * tolerance:.0f}%)"
            )
        report.append(
            f"  {dotted:32s} {base:>12.4g} -> {cur:>12.4g}  "
            f"[{marker}, {'+' if ratio >= 1 else '-'}"
            f"{100 * abs(ratio - 1):.1f}% vs baseline]"
        )
    return report, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding the committed BENCH_*.json")
    parser.add_argument("--current-dir", required=True,
                        help="directory holding the freshly generated JSON")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional degradation (default 0.25)")
    parser.add_argument("--warn-only", action="store_true",
                        help="report regressions but exit 0 (fork PRs)")
    parser.add_argument("--only", action="append", default=None,
                        metavar="BENCH_FILE", choices=sorted(TRACKED),
                        help="gate only this baseline file (repeatable); "
                             "default: every tracked file")
    args = parser.parse_args(argv)

    selected = sorted(args.only) if args.only else sorted(TRACKED)
    all_regressions: List[str] = []
    compared = 0
    for name in selected:
        baseline_path = os.path.join(args.baseline_dir, name)
        current_path = os.path.join(args.current_dir, name)
        if not os.path.exists(baseline_path):
            print(f"{name}: no committed baseline; skipping (first run?)")
            continue
        if not os.path.exists(current_path):
            all_regressions.append(
                f"{name}: baseline exists but the bench produced no JSON"
            )
            continue
        report, regressions = compare_file(
            name, baseline_path, current_path, args.tolerance
        )
        print("\n".join(report))
        all_regressions.extend(regressions)
        compared += 1

    if not compared and not all_regressions:
        print("no baselines to compare")
        return 0
    if all_regressions:
        print("\nperformance regressions detected:", file=sys.stderr)
        for line in all_regressions:
            print(f"  {line}", file=sys.stderr)
        if args.warn_only:
            print("warn-only mode: not failing the build", file=sys.stderr)
            return 0
        return 1
    print(f"\nall tracked metrics within {100 * args.tolerance:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
