"""Ablation: the design features DESIGN.md calls out.

Turns individual controller mechanisms off and measures the effect on a
fast-varying benchmark (where reaction time matters most):

* ``use_slope_signal`` -- without the slope FSM the controller is level-only
  and reacts late to swings;
* ``signal_scaled_delay`` -- without magnitude-scaled counters every trigger
  waits the full basic delay;
* ``freq_scaled_down_delay`` -- without the 1/f^2 count-down scaling the
  controller dives to f_min aggressively (cheaper but riskier);
* ``combine_actions`` -- without the scheduler's combine/cancel rule,
  simultaneous triggers serialize.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.power.metrics import (
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)
from repro.workloads.suite import get_benchmark

BENCHMARK = "mpeg2-decode"

VARIANTS = (
    ("full design", {}),
    ("no slope signal", {"use_slope_signal": False}),
    ("no signal-scaled delay", {"signal_scaled_delay": False}),
    ("no 1/f^2 count-down scaling", {"freq_scaled_down_delay": False}),
    ("no combine/cancel scheduler", {"combine_actions": False}),
)


def _sweep():
    spec = get_benchmark(BENCHMARK)
    baseline = run_experiment(
        spec, scheme="full-speed", max_instructions=SWEEP_INSTRUCTIONS,
        record_history=False,
    ).metrics
    results = {}
    for label, overrides in VARIANTS:
        run = run_experiment(
            spec,
            scheme="adaptive",
            max_instructions=SWEEP_INSTRUCTIONS,
            record_history=False,
            adaptive_overrides=overrides,
        )
        results[label] = {
            "dE": energy_savings_percent(baseline, run.metrics),
            "dT": performance_degradation_percent(baseline, run.metrics),
            "edp": edp_improvement_percent(baseline, run.metrics),
            "transitions": sum(run.transitions.values()),
        }
    return results


def test_ablation_features(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        [label, r["dE"], r["dT"], r["edp"], r["transitions"]]
        for label, r in results.items()
    ]
    table = format_table(
        ["variant", "energy savings %", "perf degradation %",
         "EDP improvement %", "transitions"],
        rows,
        title=f"Ablation: controller features on {BENCHMARK}",
    )
    emit("ablation_features", table)

    full = results["full design"]
    # every variant still saves energy (the core mechanism is the level FSM)
    for label, r in results.items():
        assert r["dE"] > 0.0, label
    # the level-only controller reacts less often than the full design
    assert results["no slope signal"]["transitions"] < full["transitions"]
    # the full design's EDP is at least competitive with every ablation
    best_ablated = max(
        r["edp"] for label, r in results.items() if label != "full design"
    )
    assert full["edp"] > best_ablated - 1.5
