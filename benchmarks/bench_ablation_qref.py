"""Ablation: the reference queue point q_ref (paper Section 3.1).

"The position of q_ref specifies the actual tradeoff between performance
degradation and energy saving": raising q_ref makes the controller more
aggressive about saving energy (the queue is allowed to run closer to full
before the domain speeds up); lowering it preserves performance.  This
sweep regenerates that trade-off curve on a steady and a fast-varying
benchmark, scaling the INT reference proportionally to its larger queue.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.power.metrics import (
    energy_savings_percent,
    performance_degradation_percent,
)
from repro.workloads.suite import get_benchmark

BENCHMARKS = ("gzip", "mpeg2-decode")
#: FP/LS reference points; INT uses 1.5x (6/4 in the paper's setting)
QREFS = (2, 4, 6, 8, 10)


def _sweep():
    results = {}
    for name in BENCHMARKS:
        spec = get_benchmark(name)
        baseline = run_experiment(
            spec, scheme="full-speed", max_instructions=SWEEP_INSTRUCTIONS,
            record_history=False,
        ).metrics
        for q_ref in QREFS:
            run = run_experiment(
                spec,
                scheme="adaptive",
                max_instructions=SWEEP_INSTRUCTIONS,
                record_history=False,
                adaptive_overrides={"q_ref": q_ref},
            )
            results[(name, q_ref)] = {
                "dE": energy_savings_percent(baseline, run.metrics),
                "dT": performance_degradation_percent(baseline, run.metrics),
            }
    return results


def test_ablation_qref(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        [name, q_ref, r["dE"], r["dT"]]
        for (name, q_ref), r in results.items()
    ]
    table = format_table(
        ["benchmark", "q_ref", "energy savings %", "perf degradation %"],
        rows,
        title="Ablation: q_ref energy/performance trade-off (paper Sec 3.1)",
    )
    emit("ablation_qref", table)

    for name in BENCHMARKS:
        # higher q_ref -> at least as much energy saved at the extremes
        assert (
            results[(name, 10)]["dE"] >= results[(name, 2)]["dE"] - 0.3
        ), name
        # and the conservative extreme protects performance best
        assert (
            results[(name, 2)]["dT"] <= results[(name, 10)]["dT"] + 0.5
        ), name
