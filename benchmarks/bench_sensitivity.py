"""Sensitivity bench: robustness of the adaptive scheme to machine knobs.

The paper's design rests on a handful of microarchitectural parameters.
This bench sweeps the ones a skeptical reader would poke -- issue-queue
size, synchronization window, clock jitter -- and checks the adaptive
scheme's benefit is robust: it saves energy under every variation, and the
trend directions make sense (e.g. a larger sync window costs performance
for everyone but does not break control).
"""

from conftest import emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.mcd.domains import MachineConfig
from repro.power.metrics import (
    energy_savings_percent,
    performance_degradation_percent,
)

BENCHMARK = "gsm-decode"
WINDOW = 50_000

VARIATIONS = (
    ("baseline machine", {}),
    ("small queues (12/10/10)", {"int_queue_size": 12, "fp_queue_size": 10, "ls_queue_size": 10}),
    ("large queues (32/24/24)", {"int_queue_size": 32, "fp_queue_size": 24, "ls_queue_size": 24}),
    ("wide sync window (600 ps)", {"sync_window_ns": 0.6}),
    ("no sync window", {"sync_window_ns": 0.0}),
    ("heavy jitter (+-40 ps)", {"jitter_sigma_ns": 0.02}),
    ("no jitter", {"jitter_sigma_ns": 0.0}),
)


def _sweep():
    results = {}
    for label, overrides in VARIATIONS:
        machine = MachineConfig(**overrides)
        base = run_experiment(
            BENCHMARK, scheme="full-speed", machine=machine,
            max_instructions=WINDOW, record_history=False,
        )
        adaptive = run_experiment(
            BENCHMARK, scheme="adaptive", machine=machine,
            max_instructions=WINDOW, record_history=False,
        )
        results[label] = {
            "dE": energy_savings_percent(base.metrics, adaptive.metrics),
            "dT": performance_degradation_percent(base.metrics, adaptive.metrics),
            "base_time_us": base.time_ns / 1000.0,
            "sync_deferrals": adaptive.sync_deferral_rate,
        }
    return results


def test_sensitivity(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        [label, r["dE"], r["dT"], r["base_time_us"], r["sync_deferrals"]]
        for label, r in results.items()
    ]
    table = format_table(
        ["machine variation", "energy savings %", "perf degradation %",
         "baseline time (us)", "sync deferral rate"],
        rows,
        title=f"Sensitivity of adaptive DVFS to machine parameters ({BENCHMARK})",
    )
    emit("sensitivity", table)

    # the scheme saves energy under every variation
    for label, r in results.items():
        assert r["dE"] > 0.0, label
        assert r["dT"] < 10.0, label
    # a wider sync window defers more transfers; none defers nothing
    assert (
        results["wide sync window (600 ps)"]["sync_deferrals"]
        > results["baseline machine"]["sync_deferrals"]
    )
    assert results["no sync window"]["sync_deferrals"] == 0.0
