"""Simulator-core throughput: reference loop vs fast path vs SoA batch.

Times ``processor.run()`` for both scalar cores on the same pre-generated
trace (gzip, 60k instructions, adaptive control) and records
instructions/sec, samples/sec, and the fast core's per-phase wall-time
split.  A second section times a 64-seed batch through
:class:`repro.simcore.soa.BatchSimulator` against the same 64 lanes run
serially on the reference core, reporting aggregate instructions/sec and
``batch_speedup_64``.  Trace generation and controller/processor
construction happen outside the timed regions -- identical work for every
core and not part of simulator throughput.

Measured reality of the batch section (honest numbers, not the
aspiration): only the DVFS control plane (observe / FSM / reconcile /
slew / energy, ~40% of a run) is vectorized across lanes; per-lane
instruction stepping is still Python, so the aggregate lands near the
fast core's throughput -- about 1.8x over the reference aggregate on an
idle box, far short of the 10x the SoA layout would deliver if lane
stepping were itself array code.  The committed baseline records the
measured value and the +-25% gate tracks it; the floor assert below only
catches collapse.

Writes ``benchmarks/results/BENCH_simcore.json`` so successive PRs can
diff the perf trajectory mechanically; the CI perf-regression job compares
a fresh run of this bench against the committed baseline (the
``instr_per_s``, ``speedup``, and ``batch_*`` keys are the tracked
series).  Both sections re-check bit-identity on the measured runs, so a
speedup bought by divergence fails here before it ever reaches the golden
suite.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.harness.experiment import build_controllers, run_experiment
from repro.harness.reporting import format_table
from repro.obs import ObsConfig
from repro.simcore import create_processor, results_identical
from repro.workloads.generator import generate_trace
from repro.workloads.suite import get_benchmark

BENCHMARK = "gzip"
INSTRUCTIONS = 60_000
SCHEME = "adaptive"
SEED = 1
#: timing repetitions per core; best-of is reported (shared CI boxes)
ROUNDS = 3

#: batch section: one vectorized batch of this many seeds...
BATCH_SEEDS = 64
#: ...at this window per lane (64 x 6k keeps the ref serial leg ~30 s)
BATCH_INSTRUCTIONS = 6_000


def _timed_run(trace, core):
    """One simulation on ``core``; returns (result, wall seconds)."""
    controllers = build_controllers(SCHEME)
    processor = create_processor(
        trace=trace,
        controllers=controllers,
        seed=SEED,
        benchmark=BENCHMARK,
        scheme=SCHEME,
        simcore=core,
    )
    started = time.perf_counter()
    result = processor.run()
    return result, time.perf_counter() - started


def _measure():
    spec = get_benchmark(BENCHMARK)
    trace = generate_trace(spec, max_instructions=INSTRUCTIONS, seed=SEED)

    results = {}
    walls = {}
    for core in ("ref", "fast"):
        best = None
        for _ in range(ROUNDS):
            result, wall_s = _timed_run(trace, core)
            best = wall_s if best is None or wall_s < best else best
        results[core] = result
        walls[core] = best

    # per-phase wall split of the fast core's sample path (PhaseProfiler)
    profiled = run_experiment(
        BENCHMARK,
        scheme=SCHEME,
        max_instructions=INSTRUCTIONS,
        seed=SEED,
        record_history=False,
        obs=ObsConfig(trace=False, profile=True),
        simcore="fast",
    )
    return results, walls, profiled.probe_summary["profile"]


def test_simcore_throughput(benchmark):
    results, walls, profile = run_once(benchmark, _measure)

    identical = results_identical(results["ref"], results["fast"])
    instructions = results["fast"].instructions
    samples = profile["samples"]
    speedup = walls["ref"] / walls["fast"]

    payload = {
        "benchmark": BENCHMARK,
        "instructions": instructions,
        "scheme": SCHEME,
        "seed": SEED,
        "samples": samples,
        "cores": {
            core: {
                "wall_s": walls[core],
                "instr_per_s": instructions / walls[core],
                "samples_per_s": samples / walls[core],
            }
            for core in ("ref", "fast")
        },
        "speedup": speedup,
        "identical": identical,
        "phases": profile["phases"],
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_simcore.json")
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        [
            core,
            f"{walls[core]:.3f} s",
            f"{instructions / walls[core]:,.0f}",
            f"{samples / walls[core]:,.0f}",
        ]
        for core in ("ref", "fast")
    ]
    rows.append(["speedup", f"{speedup:.2f}x", "", ""])
    for phase, stats in sorted(profile["phases"].items()):
        rows.append(
            [
                f"  fast phase {phase}",
                f"{stats['wall_s'] * 1e3:.1f} ms",
                "",
                f"{stats['share']:.0%} of run",
            ]
        )
    table = format_table(
        ["core", "wall", "instructions/s", "samples/s"],
        rows,
        title=(
            f"Simulator core throughput ({BENCHMARK}, {INSTRUCTIONS:,} "
            f"instructions, {SCHEME})"
        ),
    )
    emit("simcore_throughput", table + f"\n[json written to {json_path}]")

    assert identical, "fast core diverged from the reference on the bench run"
    assert instructions == INSTRUCTIONS
    # the committed baseline records the real speedup (>=2x on an idle box);
    # this floor only exists to fail loud on a catastrophic regression while
    # staying robust to noisy shared CI runners -- the +-25% gate against
    # the baseline is the actual tracking mechanism
    assert speedup >= 1.5, f"fast core speedup collapsed: {speedup:.2f}x"


def _batch_lanes(traces, core):
    """One processor per seed, built outside the timed region."""
    return [
        create_processor(
            trace=traces[seed],
            controllers=build_controllers(SCHEME),
            seed=seed,
            record_history=False,
            benchmark=BENCHMARK,
            scheme=SCHEME,
            simcore=core,
        )
        for seed in sorted(traces)
    ]


def _measure_batch():
    from repro.simcore.soa import BatchSimulator

    spec = get_benchmark(BENCHMARK)
    seeds = list(range(1, BATCH_SEEDS + 1))
    traces = {
        seed: generate_trace(
            spec, max_instructions=BATCH_INSTRUCTIONS, seed=seed
        )
        for seed in seeds
    }

    lanes = _batch_lanes(traces, "batch")
    started = time.perf_counter()
    batch_results = BatchSimulator(lanes).run()
    batch_wall = time.perf_counter() - started

    ref_lanes = _batch_lanes(traces, "ref")
    started = time.perf_counter()
    ref_results = [lane.run() for lane in ref_lanes]
    ref_wall = time.perf_counter() - started

    return batch_results, ref_results, batch_wall, ref_wall


def test_batch_throughput(benchmark):
    batch_results, ref_results, batch_wall, ref_wall = run_once(
        benchmark, _measure_batch
    )

    identical = all(
        results_identical(ref, got)
        for ref, got in zip(ref_results, batch_results)
    )
    aggregate = BATCH_SEEDS * BATCH_INSTRUCTIONS
    speedup = ref_wall / batch_wall

    json_path = os.path.join(RESULTS_DIR, "BENCH_simcore.json")
    try:
        with open(json_path) as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        payload = {}  # standalone invocation: batch section only
    payload.update(
        {
            "batch_seeds": BATCH_SEEDS,
            "batch_instructions_per_lane": BATCH_INSTRUCTIONS,
            "batch_aggregate_instructions": aggregate,
            "batch_cores": {
                "batch": {
                    "wall_s": batch_wall,
                    "instr_per_s": aggregate / batch_wall,
                },
                "ref": {
                    "wall_s": ref_wall,
                    "instr_per_s": aggregate / ref_wall,
                },
            },
            "batch_speedup_64": speedup,
            "batch_identical": identical,
        }
    )
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        [
            core,
            f"{wall:.3f} s",
            f"{aggregate / wall:,.0f}",
        ]
        for core, wall in (("ref (serial)", ref_wall), ("batch", batch_wall))
    ]
    rows.append([f"batch_speedup_{BATCH_SEEDS}", f"{speedup:.2f}x", ""])
    table = format_table(
        ["core", "wall", "aggregate instructions/s"],
        rows,
        title=(
            f"Batch-core aggregate throughput ({BENCHMARK}, "
            f"{BATCH_SEEDS} seeds x {BATCH_INSTRUCTIONS:,} instructions, "
            f"{SCHEME})"
        ),
    )
    emit("simcore_batch_throughput", table + f"\n[json written to {json_path}]")

    assert identical, "batch lanes diverged from the reference on the bench"
    # measured honestly at ~1.8x (see module docstring): the control plane
    # vectorizes, the Python lane stepper does not, and Amdahl holds.  The
    # floor exists to catch collapse (e.g. every lane silently degrading
    # to a 1-lane group); the +-25% baseline gate tracks the real value.
    assert speedup >= 1.2, f"batch aggregate speedup collapsed: {speedup:.2f}x"
