"""Simulator-core throughput: reference loop vs the simcore fast path.

Times ``processor.run()`` for both cores on the same pre-generated trace
(gzip, 60k instructions, adaptive control) and records instructions/sec,
samples/sec, and the fast core's per-phase wall-time split.  Trace
generation and controller construction happen outside the timed region --
they are identical work for both cores and not part of simulator
throughput.

Writes ``benchmarks/results/BENCH_simcore.json`` so successive PRs can
diff the perf trajectory mechanically; the CI perf-regression job compares
a fresh run of this bench against the committed baseline (the
``instr_per_s`` and ``speedup`` keys are the tracked series).  The bench
also re-checks bit-identity on the measured runs, so a speedup bought by
divergence fails here before it ever reaches the golden suite.
"""

from __future__ import annotations

import json
import os
import time

from conftest import RESULTS_DIR, emit, run_once

from repro.harness.experiment import build_controllers, run_experiment
from repro.harness.reporting import format_table
from repro.obs import ObsConfig
from repro.simcore import create_processor, results_identical
from repro.workloads.generator import generate_trace
from repro.workloads.suite import get_benchmark

BENCHMARK = "gzip"
INSTRUCTIONS = 60_000
SCHEME = "adaptive"
SEED = 1
#: timing repetitions per core; best-of is reported (shared CI boxes)
ROUNDS = 3


def _timed_run(trace, core):
    """One simulation on ``core``; returns (result, wall seconds)."""
    controllers = build_controllers(SCHEME)
    processor = create_processor(
        trace=trace,
        controllers=controllers,
        seed=SEED,
        benchmark=BENCHMARK,
        scheme=SCHEME,
        simcore=core,
    )
    started = time.perf_counter()
    result = processor.run()
    return result, time.perf_counter() - started


def _measure():
    spec = get_benchmark(BENCHMARK)
    trace = generate_trace(spec, max_instructions=INSTRUCTIONS, seed=SEED)

    results = {}
    walls = {}
    for core in ("ref", "fast"):
        best = None
        for _ in range(ROUNDS):
            result, wall_s = _timed_run(trace, core)
            best = wall_s if best is None or wall_s < best else best
        results[core] = result
        walls[core] = best

    # per-phase wall split of the fast core's sample path (PhaseProfiler)
    profiled = run_experiment(
        BENCHMARK,
        scheme=SCHEME,
        max_instructions=INSTRUCTIONS,
        seed=SEED,
        record_history=False,
        obs=ObsConfig(trace=False, profile=True),
        simcore="fast",
    )
    return results, walls, profiled.probe_summary["profile"]


def test_simcore_throughput(benchmark):
    results, walls, profile = run_once(benchmark, _measure)

    identical = results_identical(results["ref"], results["fast"])
    instructions = results["fast"].instructions
    samples = profile["samples"]
    speedup = walls["ref"] / walls["fast"]

    payload = {
        "benchmark": BENCHMARK,
        "instructions": instructions,
        "scheme": SCHEME,
        "seed": SEED,
        "samples": samples,
        "cores": {
            core: {
                "wall_s": walls[core],
                "instr_per_s": instructions / walls[core],
                "samples_per_s": samples / walls[core],
            }
            for core in ("ref", "fast")
        },
        "speedup": speedup,
        "identical": identical,
        "phases": profile["phases"],
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    json_path = os.path.join(RESULTS_DIR, "BENCH_simcore.json")
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)

    rows = [
        [
            core,
            f"{walls[core]:.3f} s",
            f"{instructions / walls[core]:,.0f}",
            f"{samples / walls[core]:,.0f}",
        ]
        for core in ("ref", "fast")
    ]
    rows.append(["speedup", f"{speedup:.2f}x", "", ""])
    for phase, stats in sorted(profile["phases"].items()):
        rows.append(
            [
                f"  fast phase {phase}",
                f"{stats['wall_s'] * 1e3:.1f} ms",
                "",
                f"{stats['share']:.0%} of run",
            ]
        )
    table = format_table(
        ["core", "wall", "instructions/s", "samples/s"],
        rows,
        title=(
            f"Simulator core throughput ({BENCHMARK}, {INSTRUCTIONS:,} "
            f"instructions, {SCHEME})"
        ),
    )
    emit("simcore_throughput", table + f"\n[json written to {json_path}]")

    assert identical, "fast core diverged from the reference on the bench run"
    assert instructions == INSTRUCTIONS
    # the committed baseline records the real speedup (>=2x on an idle box);
    # this floor only exists to fail loud on a catastrophic regression while
    # staying robust to noisy shared CI runners -- the +-25% gate against
    # the baseline is the actual tracking mechanism
    assert speedup >= 1.5, f"fast core speedup collapsed: {speedup:.2f}x"
