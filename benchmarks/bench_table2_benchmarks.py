"""Table 2: the benchmark population, with Section-5.2 classification.

Regenerates the benchmark list (6 MediaBench, 6 SPEC2000int, 5 SPEC2000fp)
and the spectral fast-workload-variation classification that splits it into
the fast-varying group and the rest.  Classification runs on each
benchmark's *full* trace (truncation would shorten phases below the interval
and mislabel steady programs) using the demand-share spectral metric; it is
validated against the specs' ground-truth labels.
"""

from conftest import ALL_BENCHMARKS, emit, run_once

from repro.harness.reporting import format_table
from repro.spectral.classify import workload_fast_variation_metric
from repro.workloads.generator import generate_trace


def _classify_all():
    rows = []
    agreements = 0
    for spec in ALL_BENCHMARKS:
        trace = generate_trace(spec)  # full trace: phase structure intact
        metric = workload_fast_variation_metric(trace)
        classified_fast = metric > 0.01
        agreements += classified_fast == spec.fast_varying
        rows.append(
            [
                spec.name,
                spec.suite,
                f"{metric:.4f}",
                "fast" if classified_fast else "steady",
                "fast" if spec.fast_varying else "steady",
            ]
        )
    return rows, agreements


def test_table2_benchmarks(benchmark):
    rows, agreements = run_once(benchmark, _classify_all)
    table = format_table(
        ["benchmark", "suite", "sub-interval demand variance",
         "spectral class", "spec label"],
        rows,
        title="Table 2: Benchmarks and fast-workload-variation classification",
    )
    emit("table2_benchmarks", table)

    assert len(rows) == 17  # 6 + 6 + 5
    # the spectral classifier must agree with the ground-truth labels
    assert agreements == 17, f"only {agreements}/17 classifications agree"
