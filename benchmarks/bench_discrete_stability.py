"""Extension bench: the discrete-time stability correction.

The paper's continuous analysis (Remark 1) says the loop is stable for any
positive gains; its future-work note anticipates that a discrete-time model
would be "better and more accurate".  This bench regenerates the discrete
stability boundary -- the largest stable K_m per (K_l, dead time) -- and
cross-checks eigenvalue verdicts against time-domain simulation.  The
boundary is finite (unlike the continuous prediction), shrinks with
reaction dead time, and the paper's own operating gains sit far inside it
at zero dead time.
"""

from conftest import emit, run_once

from repro.analysis.discrete import DiscreteClosedLoop, max_stable_km
from repro.harness.reporting import format_table

K_LS = (0.05, 0.2, 0.5)
DEAD_TIMES = (0, 2, 8, 32)


def _sweep():
    rows = []
    boundaries = {}
    for k_l in K_LS:
        for dead in DEAD_TIMES:
            boundary = max_stable_km(k_l=k_l, dead_time=dead, hi=64.0)
            boundaries[(k_l, dead)] = boundary
            if boundary <= 0.0:
                # K_l alone already destabilizes the loop at this dead time:
                # the slope gain, too, has a dead-time budget.
                rows.append([f"{k_l:g}", dead, "0 (K_l itself unstable)", "-"])
                continue
            # verify the verdict below the boundary in the time domain
            stable_loop = DiscreteClosedLoop(
                k_m=boundary * 0.9, k_l=k_l, dead_time=dead
            )
            errors, _ = stable_loop.simulate_step(e0=-1.0, steps=3000)
            converged = abs(errors[-1]) < 1.0
            rows.append(
                [f"{k_l:g}", dead, f"{boundary:.4f}",
                 "yes" if converged else "NO"]
            )
    return rows, boundaries


def test_discrete_stability(benchmark):
    rows, boundaries = run_once(benchmark, _sweep)
    table = format_table(
        ["K_l", "dead time (samples)", "max stable K_m",
         "time-domain check at 0.9x boundary"],
        rows,
        title=(
            "Extension: discrete-time stability boundary "
            "(continuous Remark 1 predicts no boundary at all)"
        ),
    )
    emit("discrete_stability", table)

    for k_l in K_LS:
        # the boundary exists and is finite
        assert 0.0 < boundaries[(k_l, 0)] < 64.0
        # dead time strictly shrinks it (possibly all the way to zero:
        # large K_l has its own dead-time budget)
        assert boundaries[(k_l, 32)] < boundaries[(k_l, 0)]
    # every stable-side time-domain check that ran converged
    assert all(row[-1] in ("yes", "-") for row in rows)
