"""Figure 10 (reconstructed): per-benchmark performance degradation.

Companion to Figure 9: execution-time increase relative to the full-speed
baseline for the adaptive scheme and both fixed-interval baselines.  The
paper's stated aggregate is ~3% average degradation for the adaptive scheme
(with q_ref chosen to land the trade-off near 5%); the reconstruction
asserts the same order of magnitude and that no benchmark degrades
catastrophically.
"""

from conftest import emit, run_once

from repro.harness.comparison import aggregate
from repro.harness.reporting import format_table


def test_fig10_perf_degradation(benchmark, full_sweep):
    sweep = run_once(benchmark, lambda: full_sweep)

    rows = []
    for comp in sweep:
        rows.append(
            [
                comp.benchmark,
                comp.suite,
                comp.result_for("adaptive").perf_degradation_pct,
                comp.result_for("attack-decay").perf_degradation_pct,
                comp.result_for("pid").perf_degradation_pct,
            ]
        )
    means = {s: aggregate(sweep, s)["perf_degradation_pct"]
             for s in ("adaptive", "attack-decay", "pid")}
    rows.append(["MEAN", "", means["adaptive"], means["attack-decay"], means["pid"]])

    table = format_table(
        ["benchmark", "suite", "adaptive dT%", "attack-decay dT%", "pid dT%"],
        rows,
        title="Figure 10 (reconstructed): performance degradation vs baseline",
    )
    emit("fig10_perf_degradation", table)

    # Shape: average degradation in the paper's low-single-digit regime,
    # q_ref tuned for ~5%; no outlier blowups.
    assert means["adaptive"] < 8.0
    for comp in sweep:
        assert comp.result_for("adaptive").perf_degradation_pct < 20.0, comp.benchmark
