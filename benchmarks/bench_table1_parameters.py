"""Table 1: summary of all simulation parameters.

Regenerates the paper's parameter table from the live configuration objects
and asserts that the configured values are the paper's (so drift in defaults
is caught here, not in a figure three benches later).
"""

from conftest import emit, run_once

from repro.core.config import default_adaptive_config
from repro.harness.reporting import format_table
from repro.mcd.domains import DomainId, MachineConfig


def _build_table() -> str:
    cfg = MachineConfig()
    int_cfg = default_adaptive_config(DomainId.INT)
    fp_cfg = default_adaptive_config(DomainId.FP)
    ls_cfg = default_adaptive_config(DomainId.LS)
    rows = [
        ["Domain frequency range", f"{cfg.f_min_ghz * 1e3:.0f} MHz - {cfg.f_max_ghz:.1f} GHz"],
        ["Domain voltage range", f"{cfg.v_min:.2f} V - {cfg.v_max:.2f} V"],
        ["Frequency change speed", f"{cfg.slew_ns_per_mhz} ns/MHz"],
        ["Signal sampling rate", f"{1e3 / cfg.sample_period_ns:.0f} MHz"],
        ["Time delays (sampling)", f"T_l0 = {fp_cfg.t_l0:.0f}, T_m0 = {fp_cfg.t_m0:.0f}"],
        ["Step size", f"{cfg.step_ghz * 1e3:.3f} MHz ({round((cfg.f_max_ghz - cfg.f_min_ghz) / cfg.step_ghz)} steps)"],
        ["Reference queue point", f"{int_cfg.q_ref} INT, {fp_cfg.q_ref} FP, {ls_cfg.q_ref} LS"],
        ["Deviation window (DW)", f"+-{fp_cfg.dw_level:.0f} level, {fp_cfg.dw_slope:.0f} slope"],
        ["Domain clock jitter", f"+-{2 * cfg.jitter_sigma_ns * 1e3:.0f} ps, normally distributed"],
        ["Inter-domain synchro window", f"{cfg.sync_window_ns * 1e3:.0f} ps"],
        ["Branch predictor 2-level", f"L1 {cfg.twolevel_l1_size}, hist {cfg.twolevel_hist_bits}, L2 {cfg.twolevel_l2_size}"],
        ["Bimodal / BTB", f"{cfg.bimodal_size} / {cfg.btb_sets} sets {cfg.btb_ways}-way"],
        ["Combined (meta) size", f"{cfg.meta_size}"],
        ["Decode/Issue/Retire width", f"{cfg.dispatch_width}/{cfg.int_issue_width + cfg.fp_issue_width}/{cfg.retire_width}"],
        ["L1 data cache", f"{cfg.l1d_size // 1024}KB, {cfg.l1d_assoc}-way"],
        ["L1 instr cache", f"{cfg.l1i_size // 1024}KB, {cfg.l1i_assoc}-way"],
        ["L2 unified cache", f"{cfg.l2_size // 1024 // 1024}MB, direct mapped"],
        ["Cache access time", f"{cfg.l1_hit_cycles} cycles L1, {cfg.l2_hit_cycles} cycles L2"],
        ["Memory access latency", f"{cfg.memory_latency_ns:.0f} ns first chunk"],
        ["Integer ALUs", f"{cfg.int_alus} + {cfg.int_mult_div} mult/div unit"],
        ["Floating-point ALUs", f"{cfg.fp_alus} + {cfg.fp_mult_div} mult/div/sqrt unit"],
        ["Issue queue size", f"{cfg.int_queue_size} INT, {cfg.fp_queue_size} FP, {cfg.ls_queue_size} LS"],
        ["Reorder buffer size", f"{cfg.rob_size}"],
        ["LS retire buffer size", f"{cfg.store_buffer_size}"],
    ]
    return format_table(["Simulation Parameter", "Value"], rows,
                        title="Table 1: Summary of All Simulation Parameters")


def test_table1_parameters(benchmark):
    table = run_once(benchmark, _build_table)
    emit("table1_parameters", table)

    # pin the load-bearing paper values
    cfg = MachineConfig()
    assert cfg.f_min_ghz == 0.25 and cfg.f_max_ghz == 1.0
    assert cfg.v_min == 0.65 and cfg.v_max == 1.20
    assert cfg.slew_ns_per_mhz == 73.3
    assert cfg.sample_period_ns == 4.0
    assert round((cfg.f_max_ghz - cfg.f_min_ghz) / cfg.step_ghz) == 320
    assert cfg.int_queue_size == 20 and cfg.fp_queue_size == 16
    assert cfg.rob_size == 80
    fp = default_adaptive_config(DomainId.FP)
    assert fp.t_m0 == 50.0 and fp.t_l0 == 8.0
    assert "Table 1" in table
