"""Extension bench: XScale-style vs Transmeta-style DVFS (paper Section 3).

The paper designs for an XScale-style implementation (fast transitions,
execution continues, fine steps) and notes the same framework applies to a
Transmeta-style one (slow transitions, per-transition halt) provided the
triggering condition and step are chosen "relatively high or big".  This
bench runs both machine models with their matched controller tunings:
the Transmeta configuration must act far less often, and its coarser,
costlier actions buy less energy at more performance risk.
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.mcd.domains import MachineConfig, transmeta_machine_config
from repro.power.metrics import (
    edp_improvement_percent,
    energy_savings_percent,
    performance_degradation_percent,
)

BENCHMARKS = ("gsm-decode", "gzip", "applu")


def _run_style(name, machine):
    baseline = run_experiment(
        name, scheme="full-speed", machine=machine,
        max_instructions=SWEEP_INSTRUCTIONS, record_history=False,
    ).metrics
    run = run_experiment(
        name, scheme="adaptive", machine=machine,
        max_instructions=SWEEP_INSTRUCTIONS, record_history=False,
    )
    return {
        "dE": energy_savings_percent(baseline, run.metrics),
        "dT": performance_degradation_percent(baseline, run.metrics),
        "edp": edp_improvement_percent(baseline, run.metrics),
        "transitions": sum(run.transitions.values()),
    }


def _sweep():
    results = {}
    for name in BENCHMARKS:
        results[(name, "xscale")] = _run_style(name, MachineConfig())
        results[(name, "transmeta")] = _run_style(name, transmeta_machine_config())
    return results


def test_ablation_dvfs_style(benchmark):
    results = run_once(benchmark, _sweep)
    rows = [
        [name, style, r["dE"], r["dT"], r["edp"], r["transitions"]]
        for (name, style), r in results.items()
    ]
    table = format_table(
        ["benchmark", "DVFS style", "energy savings %", "perf degradation %",
         "EDP improvement %", "transitions"],
        rows,
        title="Extension: XScale-style vs Transmeta-style DVFS under the adaptive scheme",
    )
    emit("ablation_dvfs_style", table)

    for name in BENCHMARKS:
        xscale = results[(name, "xscale")]
        transmeta = results[(name, "transmeta")]
        # coarse-grained control acts at least 5x less often ...
        assert transmeta["transitions"] * 5 <= max(1, xscale["transitions"]), name
        # ... and cannot beat fine-grained control on EDP
        assert xscale["edp"] >= transmeta["edp"] - 0.5, name
