"""Figure 8: queue-occupancy variance spectrum, INT domain, epic-decode.

Regenerates the multi-taper variance spectrum of the INT issue-queue
occupancy under a full-speed run, as variance density vs. wavelength (in
sampling periods), and marks the fast-variation band below the 2500-sample
(10k-cycle interval) boundary the paper's dotted line indicates.
epic-decode's workload swings are slow, so most variance must sit at long
wavelengths -- that is what makes it a *steady* benchmark despite its large
total variance.
"""

import numpy as np

from conftest import emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import csv_string
from repro.mcd.domains import DomainId
from repro.spectral.classify import FAST_WAVELENGTH_SAMPLES, band_variance
from repro.spectral.multitaper import multitaper_spectrum


def _run():
    result = run_experiment(
        "epic-decode",
        scheme="full-speed",
        max_instructions=150_000,
        history_stride=1,
    )
    occupancy = np.asarray(result.history.occupancy[DomainId.INT], dtype=float)
    return multitaper_spectrum(occupancy), occupancy


def test_fig8_variance_spectrum(benchmark):
    spectrum, occupancy = run_once(benchmark, _run)

    # decimate to ~60 log-spaced wavelength bins for the reported series
    freqs = spectrum.frequency[1:]
    dens = spectrum.density[1:]
    wavelengths = 1.0 / freqs
    edges = np.logspace(np.log10(4), np.log10(wavelengths.max()), 61)
    rows = []
    for lo, hi in zip(edges, edges[1:]):
        mask = (wavelengths >= lo) & (wavelengths < hi)
        if mask.any():
            rows.append([f"{(lo * hi) ** 0.5:.1f}", f"{float(dens[mask].mean()):.4g}"])

    fast = band_variance(spectrum, 8, FAST_WAVELENGTH_SAMPLES)
    slow = band_variance(spectrum, FAST_WAVELENGTH_SAMPLES, 1e12)
    summary = (
        "Figure 8: INT-queue variance spectrum, epic-decode (full speed)\n"
        f"total variance             : {float(occupancy.var()):.3f} entries^2\n"
        f"spectrum total             : {spectrum.total_variance:.3f} entries^2\n"
        f"fast band (< {FAST_WAVELENGTH_SAMPLES:.0f} samples) : {fast:.3f} entries^2\n"
        f"slow band (>= interval)    : {slow:.3f} entries^2\n\n"
        "series (CSV):\n"
        + csv_string(["wavelength_samples", "variance_density"], rows)
    )
    emit("fig8_variance_spectrum", summary)

    # Parseval: the spectrum must account for the series variance
    assert spectrum.total_variance == (
        __import__("pytest").approx(float(occupancy.var()), rel=0.15)
    )
    # epic-decode is the *steady* exemplar: its long-wavelength (phase-scale)
    # variance is a substantial share of the total, unlike the fast-varying
    # codecs whose occupancy variance is almost entirely sub-interval.
    assert slow / spectrum.total_variance > 0.15
