"""Figure 7: FP-domain frequency under adaptive DVFS on epic-decode.

Regenerates the paper's illustrative trace: the FP issue queue is empty
except for two phases, so the controller drives the FP frequency down toward
f_min, recovers partway through the modest mid-run phase, falls again, and
jumps toward f_max at the dramatic late burst.  The series (instructions,
relative frequency) is written as CSV alongside a coarse ASCII rendering.
"""

from conftest import emit, run_once

from repro import viz
from repro.harness.experiment import run_experiment
from repro.harness.reporting import csv_string
from repro.mcd.domains import DomainId


def _run():
    return run_experiment(
        "epic-decode", scheme="adaptive", history_stride=64
    )


def test_fig7_frequency_trace(benchmark):
    result = run_once(benchmark, _run)
    h = result.history
    fp_freq = [f / 1.0 for f in h.frequency_ghz[DomainId.FP]]  # relative, f_max = 1
    retired = h.retired

    series = csv_string(
        ["instructions", "relative_fp_frequency"],
        [[r, f"{f:.4f}"] for r, f in zip(retired, fp_freq)],
    )
    plot = viz.line_plot(retired, fp_freq, x_label="instructions")
    emit(
        "fig7_frequency_trace",
        "Figure 7: FP-domain frequency, epic-decode, adaptive DVFS\n\n"
        + plot
        + "\n\nseries (CSV):\n"
        + series,
    )

    n = len(fp_freq)
    head = fp_freq[: n // 5]
    mid = fp_freq[int(n * 0.55): int(n * 0.70)]
    burst = fp_freq[int(n * 0.78): int(n * 0.95)]

    # Shape assertions (the paper's described trajectory):
    # 1. the controller detects initial FP-queue emptiness and walks the
    #    frequency down from f_max
    assert min(head) < 0.75
    # 2. by the second long empty stretch it reaches the floor
    assert min(mid) <= 0.27
    # 3. the dramatic burst drives it back up toward f_max
    assert max(burst) > 0.9
    # 4. mean FP frequency sits far below f_max overall
    assert sum(fp_freq) / n < 0.75
