"""Extension bench: adaptive DVFS vs static settings, at a matched budget.

The motivation for *intra-task* online DVFS is that no fixed frequency
setting serves a program's phases.  Two static comparisons frame the
adaptive scheme:

* the **unconstrained EDP oracle** -- the best static setting by EDP alone.
  It happily trades 10%+ slowdowns for quadratic voltage savings, a regime
  the paper's design deliberately avoids (q_ref targets ~5% degradation),
  so it is reported for context rather than compared head-to-head;
* the **budgeted oracle** -- the best static setting whose slowdown stays
  within the adaptive scheme's own measured performance cost (+1%).  This
  is the like-for-like competitor: same performance envelope, perfect
  whole-run knowledge, zero reaction/switching cost.

Expected shape: the adaptive scheme lands within a few points of the
budgeted oracle.  At these short windows the gap is dominated by the slew
transient -- the oracle starts every run already at its destination
frequencies, while the online controller must walk there at 73.3 ns/MHz
and pays the 1/f-hat^2 caution on the way down; the gap shrinks with run
length.  The unconstrained oracle's larger savings come bundled with
5-20% slowdowns the design explicitly rejects.
"""

from conftest import emit, run_once

from repro.harness.comparison import compare_schemes
from repro.harness.reporting import format_table
from repro.harness.static_oracle import find_static_best
from repro.mcd.domains import CONTROLLED_DOMAINS
from repro.power.metrics import (
    energy_savings_percent,
    performance_degradation_percent,
)

BENCHMARKS = ("mpeg2-decode", "gsm-decode", "gzip", "applu")
WINDOW = 60_000


def _sweep():
    rows = []
    results = {}
    for name in BENCHMARKS:
        comp = compare_schemes(
            name, schemes=("adaptive",), max_instructions=WINDOW
        )
        adaptive = comp.result_for("adaptive")
        budget = max(0.5, adaptive.perf_degradation_pct + 1.0)
        budgeted = find_static_best(
            name, max_instructions=WINDOW, max_degradation_pct=budget
        )
        unconstrained = find_static_best(name, max_instructions=WINDOW)
        budgeted_de = energy_savings_percent(comp.baseline, budgeted.metrics)
        budgeted_dt = performance_degradation_percent(
            comp.baseline, budgeted.metrics
        )
        unconstrained_de = energy_savings_percent(
            comp.baseline, unconstrained.metrics
        )
        unconstrained_dt = performance_degradation_percent(
            comp.baseline, unconstrained.metrics
        )
        freq_text = "/".join(
            f"{budgeted.frequencies[d]:g}" for d in CONTROLLED_DOMAINS
        )
        rows.append(
            [
                name,
                adaptive.energy_savings_pct,
                adaptive.perf_degradation_pct,
                budgeted_de,
                budgeted_dt,
                freq_text,
                unconstrained_de,
                unconstrained_dt,
            ]
        )
        results[name] = {
            "adaptive_de": adaptive.energy_savings_pct,
            "adaptive_dt": adaptive.perf_degradation_pct,
            "budgeted_de": budgeted_de,
            "budgeted_dt": budgeted_dt,
            "budget": budget,
            "unconstrained_de": unconstrained_de,
            "unconstrained_dt": unconstrained_dt,
        }
    return rows, results


def test_static_oracle(benchmark):
    rows, results = run_once(benchmark, _sweep)
    table = format_table(
        ["benchmark", "adaptive dE%", "adaptive dT%",
         "budgeted-oracle dE%", "budgeted-oracle dT%", "oracle f (INT/FP/LS)",
         "unconstrained dE%", "unconstrained dT%"],
        rows,
        title=(
            "Extension: adaptive DVFS vs static oracles "
            "(budgeted = within adaptive's own perf cost + 1%)"
        ),
    )
    emit("static_oracle", table)

    for name, r in results.items():
        # the budgeted oracle honours the budget
        assert r["budgeted_dt"] <= r["budget"] + 0.25, name
        # within the matched budget, online control lands within the slew
        # transient of whole-run-oracle knowledge
        assert r["adaptive_de"] >= r["budgeted_de"] - 3.5, name
        # the unconstrained oracle pays for its savings with big slowdowns
        if r["unconstrained_de"] > r["budgeted_de"] + 1.0:
            assert r["unconstrained_dt"] > r["budgeted_dt"], name
