"""Section 4 analysis artifacts: roots, damping, and the Remark-3 rule.

Regenerates the quantitative content of the paper's stability analysis:
characteristic-root locations across the design space (Remark 1), the
delay/effectiveness trade-off (Remark 2), and the delay-ratio table behind
the "T_m0 should be 2-8x T_l0" guidance (Remark 3), each cross-checked
against simulated step responses of the linearized loop.
"""

from conftest import emit, run_once

from repro.analysis.linearize import linearize
from repro.analysis.model import ClosedLoopModel, ControllerModel, ServiceModel
from repro.analysis.ode import simulate_linear_step
from repro.analysis.stability import analyze, recommended_delay_ratio_range
from repro.harness.reporting import format_table


_SERVICE = ServiceModel(t1=0.2, c2=1.0)
_T_L0 = 8.0
#: aggregate step chosen so K_l = k*step/T_l0 = 1/2, the paper's worked
#: example for Remark 3 (the m/l unit-conversion constants fold in here)
_STEP = 0.5 * _T_L0 / _SERVICE.k_approx(0.6)


def _loop(t_m0, t_l0, step=_STEP):
    return ClosedLoopModel(
        controller=ControllerModel(step=step, t_m0=t_m0, t_l0=t_l0),
        service=_SERVICE,
        q_ref=4.0,
    )


def _analysis():
    rows = []
    measured = []
    for ratio in (1.0, 2.0, 4.0, 6.25, 8.0, 16.0):
        t_l0 = _T_L0
        t_m0 = ratio * t_l0
        system = linearize(_loop(t_m0, t_l0), f_op=0.6)
        report = analyze(system)
        response = simulate_linear_step(system, duration=6000.0, dt=0.05)
        rows.append(
            [
                f"{ratio:g}",
                f"{report.k_m:.5f}",
                f"{report.k_l:.5f}",
                f"{report.damping_ratio:.3f}",
                f"{report.percent_overshoot:.1f}",
                f"{response.overshoot_pct:.1f}",
                f"{report.settling_time:.0f}",
                "yes" if report.stable else "NO",
            ]
        )
        measured.append((ratio, report, response))
    return rows, measured


def test_stability_analysis(benchmark):
    rows, measured = run_once(benchmark, _analysis)
    lo, hi = recommended_delay_ratio_range()
    table = format_table(
        ["T_m0/T_l0", "K_m", "K_l", "damping xi", "overshoot% (formula)",
         "overshoot% (simulated)", "settling (periods)", "stable"],
        rows,
        title=(
            "Stability analysis (paper Sec 4): delay-ratio sweep; "
            f"Remark 3 recommends ratio in [{lo:.0f}, {hi:.0f}]"
        ),
    )
    emit("stability_analysis", table)

    for ratio, report, response in measured:
        # Remark 1: always stable
        assert report.stable
        # formula vs simulation: overshoot agrees within a few points
        assert abs(report.percent_overshoot - response.overshoot_pct) < 5.0
    # Remark 3: inside [2, 8] the damping ratio covers [0.5, 1]-ish;
    # ratio 1 underdamps (big overshoot), ratio 16 overdamps (slow rise)
    by_ratio = {r: rep for r, rep, _ in measured}
    assert by_ratio[1.0].percent_overshoot > by_ratio[4.0].percent_overshoot
    assert by_ratio[16.0].percent_overshoot == 0.0
    assert 0.4 < by_ratio[4.0].damping_ratio < 1.3
    # the paper's own setting (50/8 = 6.25) lands in the recommended band
    assert lo <= 6.25 <= hi
