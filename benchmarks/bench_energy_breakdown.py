"""Supplementary: per-domain energy breakdown under adaptive DVFS.

Shows *where* the savings come from: controlled domains (INT/FP/LS) shed
energy in proportion to how far their frequency/voltage could drop, while
the uncontrolled front end and external memory are invariant -- the
denominator that bounds total savings (see EXPERIMENTS.md's deviation
notes).
"""

from conftest import SWEEP_INSTRUCTIONS, emit, run_once

from repro.harness.experiment import run_experiment
from repro.harness.reporting import format_table
from repro.mcd.domains import DomainId

BENCHMARKS = ("epic-decode", "mcf", "applu")
DOMAINS = (DomainId.FRONT_END, DomainId.INT, DomainId.FP, DomainId.LS)


def _sweep():
    rows = []
    checks = {}
    for name in BENCHMARKS:
        base = run_experiment(
            name, scheme="full-speed", max_instructions=SWEEP_INSTRUCTIONS,
            record_history=False,
        )
        adaptive = run_experiment(
            name, scheme="adaptive", max_instructions=SWEEP_INSTRUCTIONS,
            record_history=False,
        )
        deltas = {}
        for domain in DOMAINS:
            before = base.energy.by_domain[domain]
            after = adaptive.energy.by_domain[domain]
            deltas[domain] = 100.0 * (before - after) / before
            rows.append(
                [name, domain.value, round(before), round(after),
                 deltas[domain]]
            )
        rows.append(
            [name, "memory", round(base.energy.memory),
             round(adaptive.energy.memory),
             100.0 * (base.energy.memory - adaptive.energy.memory)
             / max(1e-9, base.energy.memory)]
        )
        checks[name] = (deltas, adaptive.mean_frequency_ghz)
    return rows, checks


def test_energy_breakdown(benchmark):
    rows, checks = run_once(benchmark, _sweep)
    table = format_table(
        ["benchmark", "domain", "baseline energy", "adaptive energy",
         "savings %"],
        rows,
        title="Per-domain energy under adaptive DVFS (who contributes the savings)",
    )
    emit("energy_breakdown", table)

    for name, (deltas, mean_f) in checks.items():
        # the front end is uncontrolled: its energy moves only through the
        # run-length change (small either way)
        assert abs(deltas[DomainId.FRONT_END]) < 8.0, name
        # controlled domains' savings track how far their frequency dropped
        for domain in (DomainId.INT, DomainId.FP, DomainId.LS):
            if mean_f[domain] < 0.7:
                assert deltas[domain] > 10.0, (name, domain)
